#pragma once
// Named synthetic analogues of the paper's test clips.
//
// The paper evaluates on Carphone, Foreman, Miss America and Table (QCIF,
// 30/15/10 fps). Those clips are not redistributable here, so each name maps
// to a procedural scene whose *motion and texture statistics* match the
// original's character (see DESIGN.md §4 for the substitution argument):
//
//   miss_america — static low-texture studio background, slow head sway.
//                  Lowest Intra_SAD, smoothest motion field.
//   carphone     — textured car interior, livelier head, fast-scrolling
//                  scenery through the side window. Moderate everything.
//   table        — flat table surface with a fast bouncing ball and abruptly
//                  reversing paddle: low texture but erratic local motion.
//   foreman      — high-detail background with camera pan + shake and a
//                  nodding face. Highest Intra_SAD and the least coherent
//                  motion field.
//
// All generators are deterministic in (name, size, frame budget, fps, seed).

#include <cstdint>
#include <string>
#include <vector>

#include "video/frame.hpp"

namespace acbm::synth {

/// Request for a named synthetic sequence.
struct SequenceRequest {
  std::string name;                       ///< one of standard_sequence_names()
  video::PictureSize size = video::kQcif;
  int frame_count = 60;                   ///< frames delivered after decimation
  int fps = 30;                           ///< 30, 15 or 10 (divisors of 30)
  std::uint64_t seed = 2005;              ///< sensor-noise seed
};

/// The four clip names used throughout the paper, in the paper's column
/// order: carphone, foreman, miss_america, table.
[[nodiscard]] const std::vector<std::string>& standard_sequence_names();

/// True if `name` is one of the standard names.
[[nodiscard]] bool is_known_sequence(const std::string& name);

/// Builds the requested sequence. The scene is animated on the native 30 fps
/// timeline and temporally decimated to the requested fps, exactly how the
/// paper derives its 15/10 fps variants — inter-frame motion grows
/// accordingly. Throws std::invalid_argument for unknown names or fps values
/// that do not divide 30.
[[nodiscard]] std::vector<video::Frame> make_sequence(
    const SequenceRequest& request);

/// Keeps every `factor`-th frame starting with the first.
[[nodiscard]] std::vector<video::Frame> decimate(
    const std::vector<video::Frame>& frames, int factor);

}  // namespace acbm::synth
