#include "synth/sequences.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <stdexcept>

#include "synth/motion_model.hpp"
#include "synth/scene.hpp"
#include "synth/texture.hpp"
#include "util/rng.hpp"

namespace acbm::synth {

namespace {

using video::Frame;
using video::PictureSize;
using video::Plane;

/// Shared state for one sequence family: pre-built textures plus a function
/// that assembles the scene for 30 fps frame index t.
struct SceneScript {
  std::vector<Plane> textures;
  std::function<SceneFrame(int)> frame_at;
};

// ---------------------------------------------------------------- carphone

SceneScript carphone_script(PictureSize size) {
  const double w = size.width;
  const double h = size.height;
  SceneScript script;
  script.textures.reserve(2);
  // Car interior: moderate texture.
  script.textures.push_back(make_noise_texture(
      size.width, size.height,
      TextureSpec{.seed = 101, .scale = 0.05, .octaves = 3, .base = 110.0,
                  .amplitude = 16.0}));
  // Scenery through the window: detailed and wide so it can scroll.
  script.textures.push_back(make_noise_texture(
      size.width * 3, size.height,
      TextureSpec{.seed = 102, .scale = 0.06, .octaves = 4, .base = 150.0,
                  .amplitude = 35.0}));

  const Plane* interior = &script.textures[0];
  const Plane* scenery = &script.textures[1];
  script.frame_at = [=](int t) {
    SceneFrame scene;
    scene.noise_sigma = 1.0;

    Layer base;
    base.texture = interior;
    base.color = {120, 130};
    scene.layers.push_back(base);

    // Window on the right; scenery scrolls left at 2.5 samples/frame.
    Layer window;
    window.texture = scenery;
    window.offset = {40.0 + 2.5 * t, 0.0};
    window.x0 = 0.72 * w;
    window.y0 = 0.08 * h;
    window.x1 = 0.98 * w;
    window.y1 = 0.52 * h;
    window.feather = 1.0;
    window.color = {135, 118};
    scene.layers.push_back(window);

    const SinusoidalSway head_sway(2.5, 1.5, 25.0);
    const Displacement head = head_sway.at(t);

    Sprite shoulders;
    shoulders.shape = Sprite::Shape::kRectangle;
    shoulders.cx = 0.42 * w + head.x * 0.4;
    shoulders.cy = 1.02 * h;
    shoulders.rx = 0.30 * w;
    shoulders.ry = 0.28 * h;
    shoulders.feather = 2.0;
    shoulders.luma = 70.0;
    shoulders.texture_amp = 8.0;
    shoulders.texture_seed = 103;
    shoulders.color = {118, 124};
    scene.sprites.push_back(shoulders);

    Sprite face;
    face.cx = 0.42 * w + head.x;
    face.cy = 0.50 * h + head.y;
    face.rx = 0.19 * w;
    face.ry = 0.28 * h;
    face.feather = 1.5;
    face.luma = 140.0;
    face.texture_amp = 10.0;
    face.texture_seed = 104;
    face.texture_scale = 0.12;
    face.color = {110, 150};
    scene.sprites.push_back(face);
    return scene;
  };
  return script;
}

// ----------------------------------------------------------------- foreman

SceneScript foreman_script(PictureSize size) {
  const double w = size.width;
  const double h = size.height;
  SceneScript script;
  script.textures.reserve(1);
  // Construction-site detail: high amplitude, fine octaves; generated wider
  // than the frame so the camera can pan across it.
  script.textures.push_back(make_noise_texture(
      size.width * 3, size.height + 32,
      TextureSpec{.seed = 201, .scale = 0.035, .octaves = 4, .base = 120.0,
                  .amplitude = 45.0}));

  const Plane* site = &script.textures[0];
  // Shared across frames so the shake path is one continuous walk.
  const auto shake = std::make_shared<RandomWalk>(202, 400, 0.55);
  script.frame_at = [=](int t) {
    SceneFrame scene;
    scene.noise_sigma = 1.2;

    const LinearPan pan(0.8, 0.0);
    const Displacement camera = pan.at(t) + shake->at(t);

    Layer base;
    base.texture = site;
    base.offset = {10.0 + camera.x, 8.0 + camera.y};
    base.color = {122, 136};
    scene.layers.push_back(base);

    const SinusoidalSway nod(2.0, 2.5, 18.0);
    const Displacement head = nod.at(t);

    Sprite face;
    face.cx = 0.48 * w + head.x;
    face.cy = 0.45 * h + head.y;
    face.rx = 0.20 * w;
    face.ry = 0.30 * h;
    face.feather = 1.5;
    face.luma = 150.0;
    face.texture_amp = 20.0;
    face.texture_seed = 203;
    face.texture_scale = 0.12;
    face.color = {108, 152};
    scene.sprites.push_back(face);

    Sprite helmet;
    helmet.cx = face.cx;
    helmet.cy = face.cy - 0.26 * h;
    helmet.rx = 0.22 * w;
    helmet.ry = 0.12 * h;
    helmet.feather = 1.5;
    helmet.luma = 200.0;
    helmet.texture_amp = 6.0;
    helmet.texture_seed = 204;
    helmet.color = {128, 128};
    scene.sprites.push_back(helmet);
    return scene;
  };
  return script;
}

// ------------------------------------------------------------ miss_america

SceneScript miss_america_script(PictureSize size) {
  const double w = size.width;
  const double h = size.height;
  SceneScript script;
  script.textures.reserve(1);
  // Plain studio backdrop: a gentle gradient, essentially texture-free.
  script.textures.push_back(
      make_gradient(size.width, size.height, 60.0, 85.0));

  const Plane* backdrop = &script.textures[0];
  script.frame_at = [=](int t) {
    SceneFrame scene;
    scene.noise_sigma = 0.6;

    Layer base;
    base.texture = backdrop;
    base.color = {125, 128};
    scene.layers.push_back(base);

    const SinusoidalSway sway(1.5, 0.8, 40.0);
    const Displacement head = sway.at(t);

    Sprite body;
    body.shape = Sprite::Shape::kRectangle;
    body.cx = 0.50 * w + head.x * 0.5;
    body.cy = 1.00 * h;
    body.rx = 0.34 * w;
    body.ry = 0.30 * h;
    body.feather = 3.0;
    body.luma = 72.0;
    body.texture_amp = 4.0;
    body.texture_seed = 301;
    body.texture_scale = 0.06;
    body.color = {132, 120};
    scene.sprites.push_back(body);

    Sprite face;
    face.cx = 0.50 * w + head.x;
    face.cy = 0.40 * h + head.y;
    face.rx = 0.17 * w;
    face.ry = 0.26 * h;
    face.feather = 2.0;
    face.luma = 152.0;
    face.texture_amp = 6.0;
    face.texture_seed = 302;
    face.texture_scale = 0.10;
    face.color = {112, 148};
    scene.sprites.push_back(face);

    Sprite hair;
    hair.cx = face.cx;
    hair.cy = face.cy - 0.22 * h;
    hair.rx = 0.20 * w;
    hair.ry = 0.13 * h;
    hair.feather = 2.0;
    hair.luma = 50.0;
    hair.texture_amp = 5.0;
    hair.texture_seed = 303;
    hair.color = {128, 130};
    scene.sprites.push_back(hair);
    return scene;
  };
  return script;
}

// ------------------------------------------------------------------- table

SceneScript table_script(PictureSize size) {
  const double w = size.width;
  const double h = size.height;
  SceneScript script;
  script.textures.reserve(1);
  // Table surface: mostly flat with faint grain.
  script.textures.push_back(make_noise_texture(
      size.width, size.height,
      TextureSpec{.seed = 401, .scale = 0.04, .octaves = 2, .base = 118.0,
                  .amplitude = 8.0}));

  const Plane* surface = &script.textures[0];
  script.frame_at = [=](int t) {
    SceneFrame scene;
    scene.noise_sigma = 0.8;

    Layer base;
    base.texture = surface;
    base.color = {118, 135};
    scene.layers.push_back(base);

    // Net: static vertical stripe mid-table.
    Sprite net;
    net.shape = Sprite::Shape::kRectangle;
    net.cx = 0.50 * w;
    net.cy = 0.62 * h;
    net.rx = 0.008 * w;
    net.ry = 0.10 * h;
    net.feather = 0.8;
    net.luma = 210.0;
    net.texture_amp = 0.0;
    net.color = {128, 128};
    scene.sprites.push_back(net);

    // Ball: fast bounce — large, abruptly changing displacements.
    const BouncePath ball_path(0.30 * w, 0.35 * h, 5.5, 3.5, 0.08 * w,
                               0.92 * w, 0.15 * h, 0.80 * h);
    const auto [bx, by] = ball_path.position(t);
    Sprite ball;
    ball.cx = bx;
    ball.cy = by;
    ball.rx = 0.035 * w;
    ball.ry = 0.035 * w;
    ball.feather = 1.0;
    ball.luma = 235.0;
    ball.color = {120, 140};
    scene.sprites.push_back(ball);

    // Paddle: reverses direction quickly.
    const SinusoidalSway paddle_sway(6.0, 1.0, 14.0);
    const Displacement pd = paddle_sway.at(t);
    Sprite paddle;
    paddle.shape = Sprite::Shape::kRectangle;
    paddle.cx = 0.78 * w + pd.x;
    paddle.cy = 0.55 * h + pd.y;
    paddle.rx = 0.030 * w;
    paddle.ry = 0.085 * h;
    paddle.feather = 1.0;
    paddle.luma = 60.0;
    paddle.texture_amp = 5.0;
    paddle.texture_seed = 402;
    paddle.color = {115, 160};
    scene.sprites.push_back(paddle);
    return scene;
  };
  return script;
}

SceneScript make_script(const std::string& name, PictureSize size) {
  if (name == "carphone") {
    return carphone_script(size);
  }
  if (name == "foreman") {
    return foreman_script(size);
  }
  if (name == "miss_america") {
    return miss_america_script(size);
  }
  if (name == "table") {
    return table_script(size);
  }
  throw std::invalid_argument("unknown synthetic sequence: " + name);
}

}  // namespace

const std::vector<std::string>& standard_sequence_names() {
  static const std::vector<std::string> names = {"carphone", "foreman",
                                                 "miss_america", "table"};
  return names;
}

bool is_known_sequence(const std::string& name) {
  const auto& names = standard_sequence_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::vector<Frame> make_sequence(const SequenceRequest& request) {
  if (request.fps <= 0 || 30 % request.fps != 0) {
    throw std::invalid_argument("fps must divide 30");
  }
  if (request.frame_count <= 0) {
    throw std::invalid_argument("frame_count must be positive");
  }
  const int factor = 30 / request.fps;
  const int native_frames = request.frame_count * factor;

  const SceneScript script = make_script(request.name, request.size);
  util::Rng rng(request.seed);

  std::vector<Frame> native;
  native.reserve(static_cast<std::size_t>(native_frames));
  for (int t = 0; t < native_frames; ++t) {
    native.push_back(render_scene(request.size, script.frame_at(t), rng));
  }
  if (factor == 1) {
    return native;
  }
  return decimate(native, factor);
}

std::vector<Frame> decimate(const std::vector<Frame>& frames, int factor) {
  assert(factor >= 1);
  std::vector<Frame> out;
  out.reserve(frames.size() / static_cast<std::size_t>(factor) + 1);
  for (std::size_t i = 0; i < frames.size();
       i += static_cast<std::size_t>(factor)) {
    out.push_back(frames[i]);
  }
  return out;
}

}  // namespace acbm::synth
