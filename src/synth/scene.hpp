#pragma once
// Scene compositor: layered textures plus feathered sprites, rendered to a
// YUV 4:2:0 frame with sub-pixel motion.
//
// The compositor is intentionally simple — alpha-blended layers and
// distance-field sprites — but it controls exactly the two block statistics
// the paper's algorithm keys on: per-block texture (via texture amplitude)
// and motion-field coherence (via the motion models driving offsets).

#include <cstdint>
#include <span>
#include <vector>

#include "synth/motion_model.hpp"
#include "util/rng.hpp"
#include "video/frame.hpp"
#include "video/plane.hpp"

namespace acbm::synth {

/// 4:2:0 chroma colour attached to a layer or sprite.
struct ChromaColor {
  std::uint8_t cb = 128;
  std::uint8_t cr = 128;
};

/// A textured rectangular layer. The first layer of a scene must cover the
/// whole frame (its rect is ignored); later layers composite over it.
struct Layer {
  const video::Plane* texture = nullptr;  ///< border-extended luma source
  Displacement offset;   ///< sampling offset into the texture (sub-pixel)
  double x0 = 0.0;       ///< destination rect, frame coordinates
  double y0 = 0.0;
  double x1 = 1e9;       ///< defaults larger than any frame = full coverage
  double y1 = 1e9;
  double feather = 0.0;  ///< edge softness in samples (0 = hard edge)
  ChromaColor color;
};

/// A procedurally-shaded sprite with a feathered boundary.
struct Sprite {
  enum class Shape { kEllipse, kRectangle };

  Shape shape = Shape::kEllipse;
  double cx = 0.0;       ///< centre, frame coordinates
  double cy = 0.0;
  double rx = 8.0;       ///< radii (ellipse) or half-extents (rectangle)
  double ry = 8.0;
  double feather = 1.5;  ///< boundary softness in samples
  double luma = 128.0;
  /// Texture inside the sprite: amplitude 0 = flat shading. When
  /// `texture_tracks` is true the texture is sampled in sprite-local
  /// coordinates, so it moves rigidly with the sprite — this gives block
  /// matching a true motion vector to find.
  double texture_amp = 0.0;
  std::uint64_t texture_seed = 7;
  double texture_scale = 0.15;
  bool texture_tracks = true;
  ChromaColor color;
};

/// Full description of one frame's content.
struct SceneFrame {
  std::vector<Layer> layers;    ///< bottom-up; layers[0] covers the frame
  std::vector<Sprite> sprites;  ///< composited over all layers, in order
  double noise_sigma = 0.0;     ///< Gaussian sensor noise added to luma
};

/// Renders the scene to a frame of the given size. `rng` supplies sensor
/// noise only (scene geometry must come from deterministic motion models).
[[nodiscard]] video::Frame render_scene(video::PictureSize size,
                                        const SceneFrame& scene,
                                        util::Rng& rng);

}  // namespace acbm::synth
