#pragma once
// Time-parameterised motion models for the synthetic scenes.
//
// Each model maps a frame index to a continuous 2-D displacement. The scene
// compositor samples textures at these sub-pixel offsets, which is what makes
// half-pel refinement (and the paper's half-pel RD gains) observable on the
// synthetic material.

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace acbm::synth {

/// A continuous 2-D displacement in luma samples.
struct Displacement {
  double x = 0.0;
  double y = 0.0;

  Displacement operator+(const Displacement& o) const {
    return {x + o.x, y + o.y};
  }
};

/// Sinusoidal sway: amplitude_{x,y} · sin(2π·t/period + phase). Models the
/// gentle head motion of videoconference clips (Miss America, Carphone).
class SinusoidalSway {
 public:
  SinusoidalSway(double amplitude_x, double amplitude_y, double period_frames,
                 double phase = 0.0);

  [[nodiscard]] Displacement at(double t) const;

 private:
  double ax_;
  double ay_;
  double period_;
  double phase_;
};

/// Constant-velocity pan: velocity · t. Models camera pans (Foreman).
class LinearPan {
 public:
  LinearPan(double vx, double vy) : vx_(vx), vy_(vy) {}

  [[nodiscard]] Displacement at(double t) const { return {vx_ * t, vy_ * t}; }

 private:
  double vx_;
  double vy_;
};

/// Precomputed seeded random walk (camera shake). Per-frame Gaussian steps of
/// stddev `step_sigma`, cumulative. Deterministic for a given seed.
class RandomWalk {
 public:
  RandomWalk(std::uint64_t seed, int frames, double step_sigma);

  /// Displacement at integer frame t (clamped to the precomputed range).
  [[nodiscard]] Displacement at(int t) const;

 private:
  std::vector<Displacement> path_;
};

/// Piecewise-linear bounce inside a box: position advances by `velocity`
/// per frame and reflects off [min_x, max_x] × [min_y, max_y]. Models the
/// ball in the Table (table-tennis) sequence — fast motion with abrupt
/// direction changes, the case where predictive search fails.
class BouncePath {
 public:
  BouncePath(double start_x, double start_y, double vx, double vy,
             double min_x, double max_x, double min_y, double max_y);

  /// Exact position after t frames (computed iteratively; t small in
  /// practice). t must be >= 0.
  [[nodiscard]] std::pair<double, double> position(int t) const;

 private:
  double start_x_, start_y_, vx_, vy_;
  double min_x_, max_x_, min_y_, max_y_;
};

}  // namespace acbm::synth
