#include "synth/motion_model.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace acbm::synth {

SinusoidalSway::SinusoidalSway(double amplitude_x, double amplitude_y,
                               double period_frames, double phase)
    : ax_(amplitude_x), ay_(amplitude_y), period_(period_frames),
      phase_(phase) {
  assert(period_frames > 0.0);
}

Displacement SinusoidalSway::at(double t) const {
  const double angle = 2.0 * std::numbers::pi * t / period_ + phase_;
  // The y component runs at a slightly different rate so the sway traces a
  // Lissajous-like path instead of a straight line (closer to real head
  // movement, and it exercises both MV components).
  const double angle_y =
      2.0 * std::numbers::pi * t / (period_ * 0.73) + phase_ * 1.3;
  return {ax_ * std::sin(angle), ay_ * std::sin(angle_y)};
}

RandomWalk::RandomWalk(std::uint64_t seed, int frames, double step_sigma) {
  util::Rng rng(seed);
  path_.reserve(static_cast<std::size_t>(frames) + 1);
  Displacement pos;
  path_.push_back(pos);
  for (int i = 0; i < frames; ++i) {
    pos.x += rng.next_gaussian() * step_sigma;
    pos.y += rng.next_gaussian() * step_sigma;
    path_.push_back(pos);
  }
}

Displacement RandomWalk::at(int t) const {
  if (path_.empty()) {
    return {};
  }
  if (t < 0) {
    t = 0;
  }
  const auto idx = std::min<std::size_t>(static_cast<std::size_t>(t),
                                         path_.size() - 1);
  return path_[idx];
}

BouncePath::BouncePath(double start_x, double start_y, double vx, double vy,
                       double min_x, double max_x, double min_y, double max_y)
    : start_x_(start_x), start_y_(start_y), vx_(vx), vy_(vy), min_x_(min_x),
      max_x_(max_x), min_y_(min_y), max_y_(max_y) {
  assert(max_x > min_x && max_y > min_y);
}

std::pair<double, double> BouncePath::position(int t) const {
  assert(t >= 0);
  double x = start_x_;
  double y = start_y_;
  double vx = vx_;
  double vy = vy_;
  for (int i = 0; i < t; ++i) {
    x += vx;
    y += vy;
    if (x < min_x_) {
      x = 2.0 * min_x_ - x;
      vx = -vx;
    } else if (x > max_x_) {
      x = 2.0 * max_x_ - x;
      vx = -vx;
    }
    if (y < min_y_) {
      y = 2.0 * min_y_ - y;
      vy = -vy;
    } else if (y > max_y_) {
      y = 2.0 * max_y_ - y;
      vy = -vy;
    }
  }
  return {x, y};
}

}  // namespace acbm::synth
