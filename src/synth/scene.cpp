#include "synth/scene.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "synth/noise.hpp"
#include "synth/texture.hpp"

namespace acbm::synth {

namespace {

/// Coverage of a point inside a feathered rectangle [x0,x1]×[y0,y1].
double rect_alpha(double x, double y, double x0, double y0, double x1,
                  double y1, double feather) {
  const double d =
      std::min(std::min(x - x0, x1 - x), std::min(y - y0, y1 - y));
  if (feather <= 0.0) {
    return d >= 0.0 ? 1.0 : 0.0;
  }
  return std::clamp(d / feather + 0.5, 0.0, 1.0);
}

/// Signed distance (in samples, approximately) from the sprite boundary;
/// positive inside.
double sprite_distance(const Sprite& s, double x, double y) {
  const double dx = x - s.cx;
  const double dy = y - s.cy;
  switch (s.shape) {
    case Sprite::Shape::kEllipse: {
      const double r = std::sqrt((dx / s.rx) * (dx / s.rx) +
                                 (dy / s.ry) * (dy / s.ry));
      return (1.0 - r) * std::min(s.rx, s.ry);
    }
    case Sprite::Shape::kRectangle:
      return std::min(s.rx - std::abs(dx), s.ry - std::abs(dy));
  }
  return -1.0;
}

double sprite_alpha(const Sprite& s, double x, double y) {
  const double d = sprite_distance(s, x, y);
  if (s.feather <= 0.0) {
    return d >= 0.0 ? 1.0 : 0.0;
  }
  return std::clamp(d / s.feather + 0.5, 0.0, 1.0);
}

double sprite_luma(const Sprite& s, double x, double y) {
  if (s.texture_amp == 0.0) {
    return s.luma;
  }
  const double lx = s.texture_tracks ? x - s.cx : x;
  const double ly = s.texture_tracks ? y - s.cy : y;
  const double n =
      fbm(s.texture_seed, lx * s.texture_scale, ly * s.texture_scale, 3);
  return s.luma + s.texture_amp * (2.0 * n - 1.0);
}

}  // namespace

video::Frame render_scene(video::PictureSize size, const SceneFrame& scene,
                          util::Rng& rng) {
  assert(!scene.layers.empty());
  assert(scene.layers[0].texture != nullptr);
  const int w = size.width;
  const int h = size.height;
  video::Frame frame(size);

  // Full-resolution chroma is accumulated here and box-filtered to 4:2:0.
  std::vector<double> cb_full(static_cast<std::size_t>(w) * h);
  std::vector<double> cr_full(static_cast<std::size_t>(w) * h);

  for (int y = 0; y < h; ++y) {
    std::uint8_t* yrow = frame.y().row(y);
    for (int x = 0; x < w; ++x) {
      const double fx = static_cast<double>(x);
      const double fy = static_cast<double>(y);

      // Base layer always covers the frame.
      const Layer& base = scene.layers[0];
      double luma = sample_bilinear(*base.texture, fx + base.offset.x,
                                    fy + base.offset.y);
      double cb = base.color.cb;
      double cr = base.color.cr;

      for (std::size_t li = 1; li < scene.layers.size(); ++li) {
        const Layer& layer = scene.layers[li];
        const double a =
            rect_alpha(fx, fy, layer.x0, layer.y0, layer.x1, layer.y1,
                       layer.feather);
        if (a <= 0.0) {
          continue;
        }
        const double src = sample_bilinear(
            *layer.texture, fx + layer.offset.x, fy + layer.offset.y);
        luma += a * (src - luma);
        cb += a * (layer.color.cb - cb);
        cr += a * (layer.color.cr - cr);
      }

      for (const Sprite& sprite : scene.sprites) {
        const double a = sprite_alpha(sprite, fx, fy);
        if (a <= 0.0) {
          continue;
        }
        const double src = sprite_luma(sprite, fx, fy);
        luma += a * (src - luma);
        cb += a * (sprite.color.cb - cb);
        cr += a * (sprite.color.cr - cr);
      }

      yrow[x] = to_sample(luma);
      cb_full[static_cast<std::size_t>(y) * w + x] = cb;
      cr_full[static_cast<std::size_t>(y) * w + x] = cr;
    }
  }

  // 2×2 box filter down to 4:2:0.
  for (int cy = 0; cy < h / 2; ++cy) {
    std::uint8_t* cbrow = frame.cb().row(cy);
    std::uint8_t* crrow = frame.cr().row(cy);
    for (int cx = 0; cx < w / 2; ++cx) {
      const std::size_t i00 = static_cast<std::size_t>(2 * cy) * w + 2 * cx;
      const std::size_t i01 = i00 + 1;
      const std::size_t i10 = i00 + static_cast<std::size_t>(w);
      const std::size_t i11 = i10 + 1;
      cbrow[cx] =
          to_sample((cb_full[i00] + cb_full[i01] + cb_full[i10] +
                     cb_full[i11]) / 4.0);
      crrow[cx] =
          to_sample((cr_full[i00] + cr_full[i01] + cr_full[i10] +
                     cr_full[i11]) / 4.0);
    }
  }

  if (scene.noise_sigma > 0.0) {
    add_gaussian_noise(frame.y(), rng, scene.noise_sigma);
  }
  frame.extend_borders();
  return frame;
}

}  // namespace acbm::synth
