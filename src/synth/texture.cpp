#include "synth/texture.hpp"

#include <algorithm>
#include <cmath>

#include "synth/noise.hpp"

namespace acbm::synth {

video::Plane make_noise_texture(int w, int h, const TextureSpec& spec) {
  video::Plane plane(w, h);
  for (int y = 0; y < h; ++y) {
    std::uint8_t* row = plane.row(y);
    for (int x = 0; x < w; ++x) {
      const double n =
          fbm(spec.seed, x * spec.scale, y * spec.scale, spec.octaves);
      row[x] = to_sample(spec.base + spec.amplitude * (2.0 * n - 1.0));
    }
  }
  plane.extend_border();
  return plane;
}

video::Plane make_gradient(int w, int h, double top_luma, double bottom_luma) {
  video::Plane plane(w, h);
  for (int y = 0; y < h; ++y) {
    const double t = h > 1 ? static_cast<double>(y) / (h - 1) : 0.0;
    const auto v = to_sample(top_luma + (bottom_luma - top_luma) * t);
    std::uint8_t* row = plane.row(y);
    std::fill(row, row + w, v);
  }
  plane.extend_border();
  return plane;
}

void add_gaussian_noise(video::Plane& plane, util::Rng& rng, double sigma) {
  if (sigma <= 0.0) {
    return;
  }
  for (int y = 0; y < plane.height(); ++y) {
    std::uint8_t* row = plane.row(y);
    for (int x = 0; x < plane.width(); ++x) {
      row[x] = to_sample(row[x] + rng.next_gaussian() * sigma);
    }
  }
  plane.extend_border();
}

double sample_bilinear(const video::Plane& p, double x, double y) {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const int xi = static_cast<int>(fx);
  const int yi = static_cast<int>(fy);
  const double tx = x - fx;
  const double ty = y - fy;
  const double v00 = p.at(xi, yi);
  const double v10 = p.at(xi + 1, yi);
  const double v01 = p.at(xi, yi + 1);
  const double v11 = p.at(xi + 1, yi + 1);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

std::uint8_t to_sample(double v) {
  const double clamped = std::clamp(v, 0.0, 255.0);
  return static_cast<std::uint8_t>(std::lround(clamped));
}

}  // namespace acbm::synth
