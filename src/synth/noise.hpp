#pragma once
// Deterministic lattice value-noise and fractal Brownian motion.
//
// All synthetic textures derive from these functions; determinism (pure
// functions of seed and coordinates, no global state) is what lets the
// benches reproduce the paper's figures bit-exactly across runs.

#include <cstdint>

namespace acbm::synth {

/// Hash-based lattice noise: uniform in [0, 1), pure function of
/// (seed, xi, yi).
[[nodiscard]] double lattice_noise(std::uint64_t seed, std::int32_t xi,
                                   std::int32_t yi);

/// Smoothly interpolated value noise at continuous coordinates, range [0,1).
/// Uses quintic smoothstep so first and second derivatives are continuous
/// (avoids visible lattice seams that would create artificial block texture).
[[nodiscard]] double smooth_noise(std::uint64_t seed, double x, double y);

/// Fractal Brownian motion: `octaves` layers of smooth_noise with frequency
/// ratio `lacunarity` and amplitude ratio `gain`. Normalised to [0, 1).
[[nodiscard]] double fbm(std::uint64_t seed, double x, double y, int octaves,
                         double lacunarity = 2.0, double gain = 0.5);

}  // namespace acbm::synth
