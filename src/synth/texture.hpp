#pragma once
// Texture-plane generators and float-coordinate sampling.
//
// The amount of texture a generator puts into a plane directly controls the
// Intra_SAD statistic that drives the paper's ACBM decision rule, so the
// parameters here (amplitude, octaves, scale) are the levers DESIGN.md §4
// uses to match each test clip's character.

#include <cstdint>

#include "util/rng.hpp"
#include "video/plane.hpp"

namespace acbm::synth {

/// Parameters for a fractal-noise texture.
struct TextureSpec {
  std::uint64_t seed = 1;
  double scale = 0.08;      ///< spatial frequency (cycles per sample)
  int octaves = 3;          ///< fBm octaves; more octaves = finer detail
  double base = 128.0;      ///< mean luma
  double amplitude = 40.0;  ///< peak deviation from the mean
};

/// Generates a `w`×`h` plane of fractal noise per `spec`; border extended.
[[nodiscard]] video::Plane make_noise_texture(int w, int h,
                                              const TextureSpec& spec);

/// Generates a smooth linear luma gradient from `top_luma` to `bottom_luma`;
/// border extended. Minimal texture — models flat studio backgrounds.
[[nodiscard]] video::Plane make_gradient(int w, int h, double top_luma,
                                         double bottom_luma);

/// Adds zero-mean Gaussian sensor noise (stddev `sigma`) to the visible area
/// and re-extends the border. Clamps to [0, 255].
void add_gaussian_noise(video::Plane& plane, util::Rng& rng, double sigma);

/// Bilinear sample of `p` at continuous coordinates; (x, y) may reach into
/// the border minus one sample.
[[nodiscard]] double sample_bilinear(const video::Plane& p, double x, double y);

/// Clamps a double to the 8-bit sample range with rounding.
[[nodiscard]] std::uint8_t to_sample(double v);

}  // namespace acbm::synth
