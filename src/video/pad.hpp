#pragma once
// Picture-extension helpers beyond the per-plane replicated border.

#include "video/frame.hpp"
#include "video/plane.hpp"

namespace acbm::video {

/// Returns a copy of `src` with a (possibly different) border size; visible
/// samples are preserved and the new border is edge-replicated.
Plane with_border(const Plane& src, int border);

/// Crops the visible area [x0, x0+w) × [y0, y0+h) of `src` into a new plane
/// with the requested border. The source rectangle may extend into `src`'s
/// border region. The result's border is edge-replicated.
Plane crop(const Plane& src, int x0, int y0, int w, int h,
           int border = Plane::kDefaultBorder);

/// Like crop(), but the result's border is filled with the *actual source
/// content* surrounding the rectangle instead of edge replication. Used by
/// the §3.1 truth sequences: a window that slides over a larger still image
/// must expose real context in its border, or unrestricted search at the
/// picture edge would compare against fabricated (replicated) samples.
/// Requires the expanded rectangle to fit within src's visible+border area.
Plane crop_with_context(const Plane& src, int x0, int y0, int w, int h,
                        int border = Plane::kDefaultBorder);

}  // namespace acbm::video
