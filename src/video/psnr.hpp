#pragma once
// Distortion metrics between planes/frames. PSNR over luma is the quality
// axis of the paper's Figs. 5 and 6.

#include "video/frame.hpp"
#include "video/plane.hpp"

namespace acbm::video {

/// Mean squared error over the visible areas; planes must match in size.
[[nodiscard]] double mse(const Plane& a, const Plane& b);

/// Peak signal-to-noise ratio in dB for 8-bit samples:
/// 10·log10(255² / MSE). Identical planes return +infinity.
[[nodiscard]] double psnr(const Plane& a, const Plane& b);

/// Luma-only PSNR between two frames (the paper reports Y-PSNR).
[[nodiscard]] double psnr_luma(const Frame& a, const Frame& b);

/// Combined 4:2:0 PSNR weighting Y:Cb:Cr as 4:1:1 by sample count.
[[nodiscard]] double psnr_yuv(const Frame& a, const Frame& b);

}  // namespace acbm::video
