#include "video/pad.hpp"

#include <cassert>
#include <cstring>

namespace acbm::video {

Plane with_border(const Plane& src, int border) {
  Plane out(src.width(), src.height(), border);
  out.copy_visible_from(src);
  out.extend_border();
  return out;
}

Plane crop(const Plane& src, int x0, int y0, int w, int h, int border) {
  assert(w > 0 && h > 0);
  assert(x0 >= -src.border() && x0 + w <= src.width() + src.border());
  assert(y0 >= -src.border() && y0 + h <= src.height() + src.border());
  Plane out(w, h, border);
  for (int y = 0; y < h; ++y) {
    std::memcpy(out.row(y), src.row(y0 + y) + x0, static_cast<std::size_t>(w));
  }
  out.extend_border();
  return out;
}

Plane crop_with_context(const Plane& src, int x0, int y0, int w, int h,
                        int border) {
  assert(w > 0 && h > 0);
  assert(x0 - border >= -src.border() &&
         x0 + w + border <= src.width() + src.border());
  assert(y0 - border >= -src.border() &&
         y0 + h + border <= src.height() + src.border());
  Plane out(w, h, border);
  for (int y = -border; y < h + border; ++y) {
    std::memcpy(out.row(y) - border, src.row(y0 + y) + x0 - border,
                static_cast<std::size_t>(w + 2 * border));
  }
  return out;
}

}  // namespace acbm::video
