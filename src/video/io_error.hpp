#pragma once
// Typed error for malformed/truncated video input.
//
// The file readers (y4m_io, yuv_io) throw IoError for anything wrong with
// the INPUT — bad magic, absurd dimensions, truncated frames — as opposed
// to plain std::runtime_error for environment problems (file won't open).
// The CLIs map IoError to exit code 2, the same "your input is wrong, not
// our bug" contract util::SpecError has for flag specs.

#include <stdexcept>
#include <string>

namespace acbm::video {

class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Upper bound accepted for frame dimensions (16384 x 16384 covers 16K
/// video; anything larger in a header is corruption, and rejecting it here
/// keeps w*h arithmetic far from overflow).
inline constexpr int kMaxDimension = 16384;

}  // namespace acbm::video
