#include "video/plane.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

namespace acbm::video {

Plane::Plane(int width, int height, int border)
    : width_(width),
      height_(height),
      border_(border),
      stride_(width + 2 * border) {
  assert(width >= 0 && height >= 0 && border >= 0);
  data_.assign(static_cast<std::size_t>(stride_) *
                   static_cast<std::size_t>(height + 2 * border),
               0);
}

std::size_t Plane::index(int x, int y) const {
  assert(x >= -border_ && x < width_ + border_);
  assert(y >= -border_ && y < height_ + border_);
  return static_cast<std::size_t>(y + border_) *
             static_cast<std::size_t>(stride_) +
         static_cast<std::size_t>(x + border_);
}

void Plane::extend_border() {
  if (empty() || border_ == 0) {
    return;
  }
  // Left/right replication for each visible row.
  for (int y = 0; y < height_; ++y) {
    std::uint8_t* r = row(y);
    std::memset(r - border_, r[0], static_cast<std::size_t>(border_));
    std::memset(r + width_, r[width_ - 1], static_cast<std::size_t>(border_));
  }
  // Top/bottom replication of whole padded rows.
  const std::size_t full = static_cast<std::size_t>(stride_);
  const std::uint8_t* top = row(0) - border_;
  const std::uint8_t* bottom = row(height_ - 1) - border_;
  for (int y = 1; y <= border_; ++y) {
    std::memcpy(row(-y) - border_, top, full);
    std::memcpy(row(height_ - 1 + y) - border_, bottom, full);
  }
}

void Plane::extend_border_rows(int y0, int y1) {
  if (empty() || border_ == 0 || y0 >= y1) {
    return;
  }
  assert(y0 >= 0 && y1 <= height_);
  for (int y = y0; y < y1; ++y) {
    std::uint8_t* r = row(y);
    std::memset(r - border_, r[0], static_cast<std::size_t>(border_));
    std::memset(r + width_, r[width_ - 1], static_cast<std::size_t>(border_));
  }
  // The top/bottom bands replicate the full padded edge row, so they can
  // only be produced together with the strip that owns that edge row (whose
  // horizontal extension just ran above).
  const std::size_t full = static_cast<std::size_t>(stride_);
  if (y0 == 0) {
    const std::uint8_t* top = row(0) - border_;
    for (int y = 1; y <= border_; ++y) {
      std::memcpy(row(-y) - border_, top, full);
    }
  }
  if (y1 == height_) {
    const std::uint8_t* bottom = row(height_ - 1) - border_;
    for (int y = 1; y <= border_; ++y) {
      std::memcpy(row(height_ - 1 + y) - border_, bottom, full);
    }
  }
}

void Plane::fill(std::uint8_t value) {
  for (int y = 0; y < height_; ++y) {
    std::memset(row(y), value, static_cast<std::size_t>(width_));
  }
}

void Plane::copy_visible_from(const Plane& src) {
  assert(src.width_ == width_ && src.height_ == height_);
  for (int y = 0; y < height_; ++y) {
    std::memcpy(row(y), src.row(y), static_cast<std::size_t>(width_));
  }
}

std::uint64_t Plane::absolute_difference(const Plane& other) const {
  assert(other.width_ == width_ && other.height_ == height_);
  std::uint64_t total = 0;
  for (int y = 0; y < height_; ++y) {
    const std::uint8_t* a = row(y);
    const std::uint8_t* b = other.row(y);
    for (int x = 0; x < width_; ++x) {
      total += static_cast<std::uint64_t>(std::abs(int(a[x]) - int(b[x])));
    }
  }
  return total;
}

bool Plane::visible_equals(const Plane& other) const {
  if (other.width_ != width_ || other.height_ != height_) {
    return false;
  }
  for (int y = 0; y < height_; ++y) {
    if (std::memcmp(row(y), other.row(y),
                    static_cast<std::size_t>(width_)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace acbm::video
