#include "video/psnr.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace acbm::video {

namespace {

double sum_squared_error(const Plane& a, const Plane& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  double sse = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    const std::uint8_t* ra = a.row(y);
    const std::uint8_t* rb = b.row(y);
    for (int x = 0; x < a.width(); ++x) {
      const double d = static_cast<double>(ra[x]) - static_cast<double>(rb[x]);
      sse += d * d;
    }
  }
  return sse;
}

double mse_to_psnr(double m) {
  if (m <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

}  // namespace

double mse(const Plane& a, const Plane& b) {
  const double n = static_cast<double>(a.width()) * a.height();
  return n > 0 ? sum_squared_error(a, b) / n : 0.0;
}

double psnr(const Plane& a, const Plane& b) { return mse_to_psnr(mse(a, b)); }

double psnr_luma(const Frame& a, const Frame& b) {
  return psnr(a.y(), b.y());
}

double psnr_yuv(const Frame& a, const Frame& b) {
  const double sse = sum_squared_error(a.y(), b.y()) +
                     sum_squared_error(a.cb(), b.cb()) +
                     sum_squared_error(a.cr(), b.cr());
  const double n =
      static_cast<double>(a.width()) * a.height() * 3.0 / 2.0;
  return mse_to_psnr(n > 0 ? sse / n : 0.0);
}

}  // namespace acbm::video
