#include "video/interp.hpp"

namespace acbm::video {

std::uint8_t sample_halfpel(const Plane& p, int hx, int hy) {
  const int phase_h = hx & 1;
  const int phase_v = hy & 1;
  const int x = (hx - phase_h) >> 1;
  const int y = (hy - phase_v) >> 1;
  if (phase_h == 0 && phase_v == 0) {
    return p.at(x, y);
  }
  if (phase_v == 0) {
    return static_cast<std::uint8_t>((p.at(x, y) + p.at(x + 1, y) + 1) >> 1);
  }
  if (phase_h == 0) {
    return static_cast<std::uint8_t>((p.at(x, y) + p.at(x, y + 1) + 1) >> 1);
  }
  return static_cast<std::uint8_t>(
      (p.at(x, y) + p.at(x + 1, y) + p.at(x, y + 1) + p.at(x + 1, y + 1) + 2) >>
      2);
}

void HalfpelPlanes::ensure_interpolated() const {
  if (interp_built_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(interp_mutex_);
  if (interp_built_.load(std::memory_order_relaxed)) {
    return;
  }
  const Plane& src = integer_plane();
  const int w = src.width();
  const int h = src.height();
  // One sample is consumed on the +x/+y side for interpolation, so the
  // phase planes carry one less border sample than the source.
  const int b = src.border() > 0 ? src.border() - 1 : 0;
  for (int phase = 0; phase < 3; ++phase) {
    // After a reset() with unchanged geometry the previous build's planes
    // are still here; the loop below overwrites every sample it reads, so
    // they are reused as-is instead of being reallocated each frame.
    if (interp_[phase].width() != w || interp_[phase].height() != h ||
        interp_[phase].border() != b) {
      interp_[phase] = Plane(w, h, b);
    }
  }
  for (int y = -b; y < h + b; ++y) {
    std::uint8_t* r10 = interp_[0].row(y);
    std::uint8_t* r01 = interp_[1].row(y);
    std::uint8_t* r11 = interp_[2].row(y);
    const std::uint8_t* s0 = src.row(y);
    const std::uint8_t* s1 = src.row(y + 1);
    for (int x = -b; x < w + b; ++x) {
      const int a = s0[x];
      const int bb = s0[x + 1];
      const int c = s1[x];
      const int d = s1[x + 1];
      r10[x] = static_cast<std::uint8_t>((a + bb + 1) >> 1);
      r01[x] = static_cast<std::uint8_t>((a + c + 1) >> 1);
      r11[x] = static_cast<std::uint8_t>((a + bb + c + d + 2) >> 2);
    }
  }
  interp_built_.store(true, std::memory_order_release);
}

}  // namespace acbm::video
