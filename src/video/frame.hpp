#pragma once
// A YUV 4:2:0 frame: full-resolution luma plus half-resolution chroma.
//
// The paper's encoder (H.263/TMN) operates on 4:2:0 material; motion
// estimation uses luma only, motion compensation derives chroma vectors by
// halving (and rounding) the luma vector.

#include <cassert>

#include "video/plane.hpp"

namespace acbm::video {

/// Standard picture sizes used throughout the paper.
struct PictureSize {
  int width = 0;
  int height = 0;
};

inline constexpr PictureSize kQcif{176, 144};
inline constexpr PictureSize kCif{352, 288};

class Frame {
 public:
  Frame() = default;

  /// Allocates Y at width×height and Cb/Cr at half resolution in each
  /// dimension. Dimensions must be even (4:2:0 requirement).
  Frame(int width, int height, int border = Plane::kDefaultBorder)
      : y_(width, height, border),
        cb_(width / 2, height / 2, border),
        cr_(width / 2, height / 2, border) {
    assert(width % 2 == 0 && height % 2 == 0);
  }

  explicit Frame(PictureSize size) : Frame(size.width, size.height) {}

  [[nodiscard]] int width() const { return y_.width(); }
  [[nodiscard]] int height() const { return y_.height(); }
  [[nodiscard]] bool empty() const { return y_.empty(); }

  [[nodiscard]] const Plane& y() const { return y_; }
  [[nodiscard]] Plane& y() { return y_; }
  [[nodiscard]] const Plane& cb() const { return cb_; }
  [[nodiscard]] Plane& cb() { return cb_; }
  [[nodiscard]] const Plane& cr() const { return cr_; }
  [[nodiscard]] Plane& cr() { return cr_; }

  /// Extends the borders of all three planes.
  void extend_borders() {
    y_.extend_border();
    cb_.extend_border();
    cr_.extend_border();
  }

  /// Partial extend_borders() over luma rows [y0, y1) and the matching
  /// chroma rows (y0/y1 must be even; 4:2:0). See Plane::extend_border_rows
  /// for the strip semantics — covering every strip of the frame is
  /// sample-identical to one extend_borders().
  void extend_border_rows(int y0, int y1) {
    assert(y0 % 2 == 0 && y1 % 2 == 0);
    y_.extend_border_rows(y0, y1);
    cb_.extend_border_rows(y0 / 2, y1 / 2);
    cr_.extend_border_rows(y0 / 2, y1 / 2);
  }

  /// Fills Y with `luma` and both chroma planes with the neutral value 128.
  void fill(std::uint8_t luma) {
    y_.fill(luma);
    cb_.fill(128);
    cr_.fill(128);
  }

 private:
  Plane y_;
  Plane cb_;
  Plane cr_;
};

}  // namespace acbm::video
