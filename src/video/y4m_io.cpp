#include "video/y4m_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace acbm::video {

namespace {

void read_plane(std::istream& in, Plane& plane) {
  std::vector<char> buffer(static_cast<std::size_t>(plane.width()));
  for (int y = 0; y < plane.height(); ++y) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    if (!in) {
      throw std::runtime_error("y4m_io: truncated frame");
    }
    std::memcpy(plane.row(y), buffer.data(), buffer.size());
  }
}

}  // namespace

Y4mVideo read_y4m(const std::string& path, std::size_t max_frames) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("y4m_io: cannot open " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    throw std::runtime_error("y4m_io: missing stream header");
  }
  if (header.rfind("YUV4MPEG2", 0) != 0) {
    throw std::runtime_error("y4m_io: not a YUV4MPEG2 stream");
  }
  Y4mVideo video;
  std::istringstream tokens(header.substr(9));
  std::string tok;
  while (tokens >> tok) {
    if (tok.empty()) {
      continue;
    }
    switch (tok[0]) {
      case 'W':
        video.size.width = std::stoi(tok.substr(1));
        break;
      case 'H':
        video.size.height = std::stoi(tok.substr(1));
        break;
      case 'F': {
        const auto colon = tok.find(':');
        if (colon == std::string::npos) {
          throw std::runtime_error("y4m_io: malformed frame rate");
        }
        video.rate.num = std::stoi(tok.substr(1, colon - 1));
        video.rate.den = std::stoi(tok.substr(colon + 1));
        break;
      }
      case 'C':
        if (tok.rfind("C420", 0) != 0) {
          throw std::runtime_error("y4m_io: only 4:2:0 chroma is supported");
        }
        break;
      default:
        break;  // interlacing/aspect tokens are accepted and ignored
    }
  }
  if (video.size.width <= 0 || video.size.height <= 0) {
    throw std::runtime_error("y4m_io: missing picture dimensions");
  }
  while (max_frames == 0 || video.frames.size() < max_frames) {
    std::string frame_header;
    if (!std::getline(in, frame_header)) {
      break;  // clean EOF
    }
    if (frame_header.rfind("FRAME", 0) != 0) {
      throw std::runtime_error("y4m_io: malformed FRAME marker");
    }
    Frame frame(video.size);
    read_plane(in, frame.y());
    read_plane(in, frame.cb());
    read_plane(in, frame.cr());
    frame.extend_borders();
    video.frames.push_back(std::move(frame));
  }
  return video;
}

void write_y4m(const std::string& path, const Y4mVideo& video) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("y4m_io: cannot open " + path + " for writing");
  }
  out << "YUV4MPEG2 W" << video.size.width << " H" << video.size.height
      << " F" << video.rate.num << ":" << video.rate.den << " Ip A1:1 C420jpeg\n";
  for (const Frame& frame : video.frames) {
    out << "FRAME\n";
    for (const Plane* p : {&frame.y(), &frame.cb(), &frame.cr()}) {
      for (int y = 0; y < p->height(); ++y) {
        out.write(reinterpret_cast<const char*>(p->row(y)), p->width());
      }
    }
  }
  if (!out) {
    throw std::runtime_error("y4m_io: write failure on " + path);
  }
}

}  // namespace acbm::video
