#include "video/y4m_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "video/io_error.hpp"

namespace acbm::video {

namespace {

// Longest header line we accept before declaring the stream malformed. Real
// Y4M headers are well under 200 bytes; the cap keeps a corrupt file from
// making getline slurp the whole stream into one std::string.
constexpr std::size_t kMaxHeaderLine = 4096;

/// getline with a length cap. Returns false on clean EOF at position zero.
bool bounded_line(std::istream& in, std::string& line, const char* what) {
  line.clear();
  char c = 0;
  while (in.get(c)) {
    if (c == '\n') {
      return true;
    }
    line.push_back(c);
    if (line.size() > kMaxHeaderLine) {
      throw IoError(std::string("y4m_io: ") + what + " exceeds " +
                    std::to_string(kMaxHeaderLine) + " bytes");
    }
  }
  if (!line.empty()) {
    throw IoError(std::string("y4m_io: ") + what + " truncated (no newline)");
  }
  return false;
}

/// Strict decimal parse for header fields: digits only, bounded by `limit`.
int parse_header_int(std::string_view text, int limit, const char* what) {
  if (text.empty()) {
    throw IoError(std::string("y4m_io: empty ") + what + " field");
  }
  long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw IoError(std::string("y4m_io: malformed ") + what + " \"" +
                    std::string(text) + "\"");
    }
    value = value * 10 + (c - '0');
    if (value > limit) {
      throw IoError(std::string("y4m_io: ") + what + " " + std::string(text) +
                    " exceeds limit " + std::to_string(limit));
    }
  }
  return static_cast<int>(value);
}

void read_plane(std::istream& in, Plane& plane) {
  std::vector<char> buffer(static_cast<std::size_t>(plane.width()));
  for (int y = 0; y < plane.height(); ++y) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    if (!in) {
      throw IoError("y4m_io: truncated frame");
    }
    std::memcpy(plane.row(y), buffer.data(), buffer.size());
  }
}

}  // namespace

Y4mVideo read_y4m(const std::string& path, std::size_t max_frames) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("y4m_io: cannot open " + path);
  }
  std::string header;
  if (!bounded_line(in, header, "stream header")) {
    throw IoError("y4m_io: missing stream header");
  }
  if (header.rfind("YUV4MPEG2", 0) != 0) {
    throw IoError("y4m_io: not a YUV4MPEG2 stream");
  }
  Y4mVideo video;
  std::istringstream tokens(header.substr(9));
  std::string tok;
  while (tokens >> tok) {
    if (tok.empty()) {
      continue;
    }
    const std::string_view value = std::string_view(tok).substr(1);
    switch (tok[0]) {
      case 'W':
        video.size.width = parse_header_int(value, kMaxDimension, "width");
        break;
      case 'H':
        video.size.height = parse_header_int(value, kMaxDimension, "height");
        break;
      case 'F': {
        const auto colon = value.find(':');
        if (colon == std::string_view::npos) {
          throw IoError("y4m_io: malformed frame rate \"" + tok + "\"");
        }
        video.rate.num = parse_header_int(value.substr(0, colon), 1000000,
                                          "frame-rate numerator");
        video.rate.den = parse_header_int(value.substr(colon + 1), 1000000,
                                          "frame-rate denominator");
        break;
      }
      case 'C':
        if (tok.rfind("C420", 0) != 0) {
          throw IoError("y4m_io: only 4:2:0 chroma is supported, got " + tok);
        }
        break;
      default:
        break;  // interlacing/aspect tokens are accepted and ignored
    }
  }
  if (video.size.width <= 0 || video.size.height <= 0) {
    throw IoError("y4m_io: missing picture dimensions");
  }
  if (video.size.width % 2 != 0 || video.size.height % 2 != 0) {
    throw IoError("y4m_io: 4:2:0 dimensions must be even, got " +
                  std::to_string(video.size.width) + "x" +
                  std::to_string(video.size.height));
  }
  if (video.rate.num <= 0 || video.rate.den <= 0) {
    throw IoError("y4m_io: frame rate must be positive, got F" +
                  std::to_string(video.rate.num) + ":" +
                  std::to_string(video.rate.den));
  }
  while (max_frames == 0 || video.frames.size() < max_frames) {
    std::string frame_header;
    if (!bounded_line(in, frame_header, "FRAME marker")) {
      break;  // clean EOF
    }
    if (frame_header.rfind("FRAME", 0) != 0) {
      throw IoError("y4m_io: malformed FRAME marker");
    }
    Frame frame(video.size);
    read_plane(in, frame.y());
    read_plane(in, frame.cb());
    read_plane(in, frame.cr());
    frame.extend_borders();
    video.frames.push_back(std::move(frame));
  }
  return video;
}

void write_y4m(const std::string& path, const Y4mVideo& video) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("y4m_io: cannot open " + path + " for writing");
  }
  out << "YUV4MPEG2 W" << video.size.width << " H" << video.size.height
      << " F" << video.rate.num << ":" << video.rate.den << " Ip A1:1 C420jpeg\n";
  for (const Frame& frame : video.frames) {
    out << "FRAME\n";
    for (const Plane* p : {&frame.y(), &frame.cb(), &frame.cr()}) {
      for (int y = 0; y < p->height(); ++y) {
        out.write(reinterpret_cast<const char*>(p->row(y)), p->width());
      }
    }
  }
  if (!out) {
    throw std::runtime_error("y4m_io: write failure on " + path);
  }
}

}  // namespace acbm::video
