#pragma once
// A single 8-bit sample plane (luma or chroma) with an explicit replicated
// border.
//
// Motion estimation with a ±p search window plus half-pel refinement reads up
// to p+1 samples outside the picture; rather than branch per pixel, every
// Plane owns a border of `border()` samples on all four sides and the search
// code indexes freely in [-border, size+border). `extend_border()` replicates
// edge samples outward (the H.263 unrestricted-MV convention).

#include <cstdint>
#include <span>
#include <vector>

namespace acbm::video {

class Plane {
 public:
  /// Default border sized for the paper's p=15 search plus half-pel overread.
  static constexpr int kDefaultBorder = 24;

  Plane() = default;

  /// Creates a plane of `width`×`height` visible samples with `border`
  /// padding samples on each side, zero-initialised.
  Plane(int width, int height, int border = kDefaultBorder);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int border() const { return border_; }
  /// Distance in samples between vertically adjacent samples.
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] bool empty() const { return width_ == 0 || height_ == 0; }

  /// Sample accessor; (x, y) may range over [-border, width+border) ×
  /// [-border, height+border). Debug builds assert the bound.
  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return data_[index(x, y)];
  }
  void set(int x, int y, std::uint8_t v) { data_[index(x, y)] = v; }

  /// Pointer to the first *visible* sample of row y (y may be in the border
  /// range); pointer arithmetic within [-border, width+border) is valid.
  [[nodiscard]] const std::uint8_t* row(int y) const {
    return data_.data() + index(0, y);
  }
  [[nodiscard]] std::uint8_t* row(int y) { return data_.data() + index(0, y); }

  /// Replicates the outermost visible samples into the border region.
  /// Call after any bulk write to the visible area.
  void extend_border();

  /// Partial extend_border(): replicates the left/right border of visible
  /// rows [y0, y1) only, plus the top border band when y0 == 0 and the
  /// bottom band when y1 == height(). Lets a producer publish a picture in
  /// horizontal strips with each strip's border valid the moment the strip
  /// is — calling it over every strip of a picture is sample-identical to
  /// one extend_border(). Disjoint strips may be extended concurrently.
  void extend_border_rows(int y0, int y1);

  /// Fills the visible area with a constant value (border untouched).
  void fill(std::uint8_t value);

  /// Copies the visible area from another plane of identical dimensions.
  void copy_visible_from(const Plane& src);

  /// Sum of absolute per-sample differences over the visible area.
  [[nodiscard]] std::uint64_t absolute_difference(const Plane& other) const;

  /// True when the visible areas are sample-for-sample identical.
  [[nodiscard]] bool visible_equals(const Plane& other) const;

 private:
  [[nodiscard]] std::size_t index(int x, int y) const;

  int width_ = 0;
  int height_ = 0;
  int border_ = 0;
  int stride_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace acbm::video
