#pragma once
// Raw planar YUV 4:2:0 ("I420") file I/O.
//
// The standard test clips the paper uses are distributed as headerless .yuv
// files; these helpers let users run every tool in this repository on the
// real Carphone/Foreman/... material when they have it, while the bundled
// benches fall back to the synthetic analogues (DESIGN.md §4).

#include <cstddef>
#include <string>
#include <vector>

#include "video/frame.hpp"

namespace acbm::video {

/// Reads up to `max_frames` I420 frames of the given size from `path`
/// (0 = all). Throws video::IoError on an invalid `size` (non-positive,
/// odd, or above kMaxDimension) or on a truncated frame, and plain
/// std::runtime_error on open failure.
std::vector<Frame> read_yuv420(const std::string& path, PictureSize size,
                               std::size_t max_frames = 0);

/// Appends nothing; writes the frames as headerless I420 to `path`,
/// overwriting any existing file. Throws std::runtime_error on failure.
void write_yuv420(const std::string& path, const std::vector<Frame>& frames);

/// Serialises one frame into a contiguous I420 byte vector (Y then Cb then
/// Cr, no padding). Useful for in-memory round-trip tests.
std::vector<std::uint8_t> pack_i420(const Frame& frame);

/// Parses one I420 frame from `bytes` (must be exactly w*h*3/2 bytes).
Frame unpack_i420(const std::vector<std::uint8_t>& bytes, PictureSize size);

}  // namespace acbm::video
