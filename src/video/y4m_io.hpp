#pragma once
// YUV4MPEG2 (.y4m) container I/O, 4:2:0 only.
//
// Y4M adds a self-describing header to raw YUV, which makes the example
// binaries' output directly playable with standard tools (ffplay/mpv).

#include <cstddef>
#include <string>
#include <vector>

#include "video/frame.hpp"

namespace acbm::video {

/// Frame rate as an exact rational (Y4M encodes it as "F<num>:<den>").
struct FrameRate {
  int num = 30;
  int den = 1;

  [[nodiscard]] double fps() const {
    return den != 0 ? static_cast<double>(num) / den : 0.0;
  }
};

struct Y4mVideo {
  PictureSize size;
  FrameRate rate;
  std::vector<Frame> frames;
};

/// Reads a 4:2:0 .y4m file. Throws video::IoError (see video/io_error.hpp)
/// on malformed headers, absurd or odd dimensions, unsupported chroma
/// subsampling, or truncated frames; plain std::runtime_error when the file
/// cannot be opened. Dimensions are capped at kMaxDimension per axis —
/// a corrupt header can never trigger a multi-gigabyte allocation.
Y4mVideo read_y4m(const std::string& path, std::size_t max_frames = 0);

/// Writes frames as YUV4MPEG2 with C420jpeg chroma siting.
void write_y4m(const std::string& path, const Y4mVideo& video);

}  // namespace acbm::video
