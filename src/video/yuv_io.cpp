#include "video/yuv_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "video/io_error.hpp"

namespace acbm::video {

namespace {

std::size_t frame_bytes(PictureSize size) {
  return static_cast<std::size_t>(size.width) * size.height * 3 / 2;
}

/// Headerless I420 carries no self-description, so the caller-supplied size
/// is the only defence against a bogus allocation — validate it up front.
void check_size(PictureSize size, const char* what) {
  if (size.width <= 0 || size.height <= 0) {
    throw IoError(std::string("yuv_io: ") + what +
                  " requires positive dimensions, got " +
                  std::to_string(size.width) + "x" +
                  std::to_string(size.height));
  }
  if (size.width > kMaxDimension || size.height > kMaxDimension) {
    throw IoError(std::string("yuv_io: ") + what + " dimensions " +
                  std::to_string(size.width) + "x" +
                  std::to_string(size.height) + " exceed limit " +
                  std::to_string(kMaxDimension));
  }
  if (size.width % 2 != 0 || size.height % 2 != 0) {
    throw IoError(std::string("yuv_io: ") + what +
                  " 4:2:0 dimensions must be even, got " +
                  std::to_string(size.width) + "x" +
                  std::to_string(size.height));
  }
}

void read_plane(std::istream& in, Plane& plane) {
  std::vector<char> buffer(static_cast<std::size_t>(plane.width()));
  for (int y = 0; y < plane.height(); ++y) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    if (!in) {
      throw IoError("yuv_io: truncated frame");
    }
    std::memcpy(plane.row(y), buffer.data(), buffer.size());
  }
}

void write_plane(std::ostream& out, const Plane& plane) {
  for (int y = 0; y < plane.height(); ++y) {
    out.write(reinterpret_cast<const char*>(plane.row(y)), plane.width());
  }
}

}  // namespace

std::vector<Frame> read_yuv420(const std::string& path, PictureSize size,
                               std::size_t max_frames) {
  check_size(size, "read_yuv420");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("yuv_io: cannot open " + path);
  }
  std::vector<Frame> frames;
  while (max_frames == 0 || frames.size() < max_frames) {
    // Peek to distinguish clean EOF from a truncated frame.
    if (in.peek() == std::char_traits<char>::eof()) {
      break;
    }
    Frame frame(size);
    read_plane(in, frame.y());
    read_plane(in, frame.cb());
    read_plane(in, frame.cr());
    frame.extend_borders();
    frames.push_back(std::move(frame));
  }
  return frames;
}

void write_yuv420(const std::string& path, const std::vector<Frame>& frames) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("yuv_io: cannot open " + path + " for writing");
  }
  for (const Frame& frame : frames) {
    write_plane(out, frame.y());
    write_plane(out, frame.cb());
    write_plane(out, frame.cr());
  }
  if (!out) {
    throw std::runtime_error("yuv_io: write failure on " + path);
  }
}

std::vector<std::uint8_t> pack_i420(const Frame& frame) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(frame_bytes({frame.width(), frame.height()}));
  auto append = [&bytes](const Plane& p) {
    for (int y = 0; y < p.height(); ++y) {
      const std::uint8_t* r = p.row(y);
      bytes.insert(bytes.end(), r, r + p.width());
    }
  };
  append(frame.y());
  append(frame.cb());
  append(frame.cr());
  return bytes;
}

Frame unpack_i420(const std::vector<std::uint8_t>& bytes, PictureSize size) {
  check_size(size, "unpack_i420");
  if (bytes.size() != frame_bytes(size)) {
    throw IoError("yuv_io: byte count " + std::to_string(bytes.size()) +
                  " does not match frame size (want " +
                  std::to_string(frame_bytes(size)) + ")");
  }
  Frame frame(size);
  const std::uint8_t* src = bytes.data();
  auto take = [&src](Plane& p) {
    for (int y = 0; y < p.height(); ++y) {
      std::memcpy(p.row(y), src, static_cast<std::size_t>(p.width()));
      src += p.width();
    }
  };
  take(frame.y());
  take(frame.cb());
  take(frame.cr());
  frame.extend_borders();
  return frame;
}

}  // namespace acbm::video
