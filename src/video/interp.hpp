#pragma once
// Half-pel bilinear interpolation (H.263 convention).
//
// Both the motion estimators (half-pel refinement) and the codec's motion
// compensation sample reference pictures on a half-pel grid. Two access
// styles are provided:
//
//  * `sample_halfpel()` — direct computation of one sample at half-pel
//    coordinates; used where each access touches a single sub-pel phase.
//  * `HalfpelPlanes` — a handle on a reference picture that can serve both
//    the integer-pel plane and the classic pre-interpolated {H, V, HV}
//    phase planes. Since the fused interpolate+SAD kernels landed
//    (simd/sad_kernels.hpp), the hot paths — candidate matching through
//    me::sad_block_halfpel and motion compensation through
//    codec::predict_luma — read only the integer plane and interpolate on
//    the fly, so construction is LAZY: building a HalfpelPlanes copies the
//    integer plane and nothing else, and the three interpolated phase
//    planes are materialised only on the first plane() call that asks for
//    one (thread-safe). An encode or decode that never requests a phase
//    plane never pays the 4-plane interpolation pass the paper's
//    complexity accounting charges per coded frame.
//
// Rounding follows H.263: (a+b+1)>>1 and (a+b+c+d+2)>>2.

#include <atomic>
#include <cstdint>
#include <mutex>

#include "video/plane.hpp"

namespace acbm::video {

/// Returns the reference sample at half-pel position (hx, hy), where hx/hy
/// are in half-pel units (integer position X maps to hx = 2X). Coordinates
/// may extend into the plane border (minus one sample for interpolation).
[[nodiscard]] std::uint8_t sample_halfpel(const Plane& p, int hx, int hy);

/// Half-pel view of a reference picture. plane(h, v) selects a phase, e.g.
/// plane(1, 0) is the horizontally-half-shifted picture. The integer phase
/// (0, 0) keeps the source's full border; the interpolated phases consume
/// one sample on the +x/+y side and carry one less border sample — and are
/// built lazily on first request (see the header comment).
class HalfpelPlanes {
 public:
  HalfpelPlanes() = default;

  /// Snapshots `src` (whose border must already be extended, at least one
  /// sample deep). Cheap: only the integer plane is copied; interpolation
  /// is deferred until a phase plane is requested.
  explicit HalfpelPlanes(const Plane& src) : integer_(src) {}

  /// Re-snapshots `src` IN PLACE: equivalent to assigning
  /// HalfpelPlanes(src) but reusing this object's existing buffers — the
  /// integer snapshot is copy-assigned (no reallocation when the geometry
  /// is unchanged) and any previously materialised phase planes are kept as
  /// storage for the next lazy build instead of being freed. The encoder
  /// pipeline calls this once per P-frame; at HD sizes the old
  /// construct-and-assign path freed and reallocated a full padded plane
  /// per frame. Not safe concurrently with readers (the encoder's stage
  /// barrier provides that exclusion).
  void reset(const Plane& src) {
    integer_ = src;
    borrowed_ = nullptr;
    interp_built_.store(false, std::memory_order_release);
  }

  /// BORROWS `src` instead of snapshotting it: integer_plane() serves *src
  /// directly (zero copies) until the next bind()/reset(). The caller owns
  /// the aliasing discipline — `src` must outlive the binding and every
  /// sample a reader touches (including the replicated border) must be
  /// final before it is read. The frame pipeline uses this to point ME at
  /// the previous frame's reconstruction buffer while stage 3 is still
  /// filling its lower rows, with a row-readiness counter gating the reads.
  void bind(const Plane* src) {
    borrowed_ = src;
    interp_built_.store(false, std::memory_order_release);
  }

  HalfpelPlanes(const HalfpelPlanes& other) { copy_from(other); }
  HalfpelPlanes& operator=(const HalfpelPlanes& other) {
    if (this != &other) {
      copy_from(other);
    }
    return *this;
  }
  HalfpelPlanes(HalfpelPlanes&& other) noexcept { move_from(other); }
  HalfpelPlanes& operator=(HalfpelPlanes&& other) noexcept {
    if (this != &other) {
      move_from(other);
    }
    return *this;
  }

  /// The integer-pel reference (the constructor's snapshot, or the bound
  /// plane after bind()). This is what the fused interpolate+SAD kernels
  /// and on-the-fly motion compensation read; it never triggers
  /// interpolation.
  [[nodiscard]] const Plane& integer_plane() const {
    return borrowed_ != nullptr ? *borrowed_ : integer_;
  }

  /// phase_h, phase_v in {0,1}. Requesting any interpolated phase
  /// materialises all three on first use (safe from concurrent callers).
  [[nodiscard]] const Plane& plane(int phase_h, int phase_v) const {
    if (phase_h == 0 && phase_v == 0) {
      return integer_plane();
    }
    ensure_interpolated();
    return interp_[phase_v * 2 + phase_h - 1];
  }

  /// Convenience: one sample at half-pel coordinates, computed directly
  /// from the integer plane (never triggers the lazy build).
  [[nodiscard]] std::uint8_t at(int hx, int hy) const {
    return sample_halfpel(integer_plane(), hx, hy);
  }

  [[nodiscard]] bool empty() const { return integer_plane().empty(); }

 private:
  /// Builds the H, V and HV phase planes from integer_ on first demand.
  /// Double-checked: the atomic flag is the fast path, the mutex
  /// serialises the one build.
  void ensure_interpolated() const;

  void copy_from(const HalfpelPlanes& other) {
    integer_ = other.integer_;
    borrowed_ = other.borrowed_;
    const bool built = other.interp_built_.load(std::memory_order_acquire);
    for (int i = 0; i < 3; ++i) {
      interp_[i] = built ? other.interp_[i] : Plane();
    }
    interp_built_.store(built, std::memory_order_release);
  }
  void move_from(HalfpelPlanes& other) noexcept {
    integer_ = std::move(other.integer_);
    borrowed_ = other.borrowed_;
    other.borrowed_ = nullptr;
    const bool built = other.interp_built_.load(std::memory_order_acquire);
    for (int i = 0; i < 3; ++i) {
      interp_[i] = built ? std::move(other.interp_[i]) : Plane();
    }
    interp_built_.store(built, std::memory_order_release);
    other.interp_built_.store(false, std::memory_order_release);
  }

  Plane integer_;  ///< owned snapshot; unused while borrowed_ is set
  const Plane* borrowed_ = nullptr;  ///< bind() target, not owned
  mutable Plane interp_[3];  ///< H, V, HV — empty until first plane() ask
  mutable std::atomic<bool> interp_built_{false};
  mutable std::mutex interp_mutex_;
};

}  // namespace acbm::video
