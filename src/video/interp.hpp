#pragma once
// Half-pel bilinear interpolation (H.263 convention).
//
// Both the motion estimators (half-pel refinement) and the codec's motion
// compensation sample reference pictures on a half-pel grid. Two access
// styles are provided:
//
//  * `sample_halfpel()` — direct computation of one sample at half-pel
//    coordinates; used by motion compensation where each block touches a
//    single sub-pel phase.
//  * `HalfpelPlanes` — the classic pre-interpolated {integer, H, V, HV}
//    plane set; used by search loops that probe many half-pel candidates
//    against the same reference.
//
// Rounding follows H.263: (a+b+1)>>1 and (a+b+c+d+2)>>2.

#include <cstdint>

#include "video/plane.hpp"

namespace acbm::video {

/// Returns the reference sample at half-pel position (hx, hy), where hx/hy
/// are in half-pel units (integer position X maps to hx = 2X). Coordinates
/// may extend into the plane border (minus one sample for interpolation).
[[nodiscard]] std::uint8_t sample_halfpel(const Plane& p, int hx, int hy);

/// Pre-interpolated half-pel planes. Each plane has the same visible size and
/// border as the source; plane(h, v) selects the phase, e.g. plane(1, 0) is
/// the horizontally-half-shifted picture.
class HalfpelPlanes {
 public:
  HalfpelPlanes() = default;

  /// Builds all four phase planes from `src` (whose border must already be
  /// extended). Interpolation runs over the border region too, so search
  /// windows may cross picture edges.
  explicit HalfpelPlanes(const Plane& src);

  /// phase_h, phase_v in {0,1}.
  [[nodiscard]] const Plane& plane(int phase_h, int phase_v) const {
    return planes_[phase_v * 2 + phase_h];
  }

  /// Convenience: sample at half-pel coordinates via the phase planes.
  [[nodiscard]] std::uint8_t at(int hx, int hy) const {
    const int phase_h = hx & 1;
    const int phase_v = hy & 1;
    // Floor-divide (valid for negatives) to the integer-sample cell.
    const int x = (hx - phase_h) >> 1;
    const int y = (hy - phase_v) >> 1;
    return plane(phase_h, phase_v).at(x, y);
  }

  [[nodiscard]] bool empty() const { return planes_[0].empty(); }

 private:
  Plane planes_[4];
};

}  // namespace acbm::video
