#include "video/frame.hpp"

// Frame is header-only today; this translation unit anchors the library and
// keeps a stable home for future out-of-line members.
