#pragma once
// 4SS — four-step search (Po & Ma [4] of the paper's references).
//
// A 5×5 (±2 integer) 9-point pattern that recentres while the minimum sits
// on the pattern boundary, then finishes with a 3×3 (±1) stage and half-pel
// refinement. Converges in four stages for p = 7; for larger ranges the
// recentring phase simply runs longer (bounded by the window).

#include "me/estimator.hpp"

namespace acbm::me {

class Fss final : public MotionEstimator {
 public:
  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "4SS"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<Fss>(*this);
  }
};

}  // namespace acbm::me
