#pragma once
// Parameterized estimator specs: the "NAME:key=val,key=val" grammar plus the
// descriptor/value layer the registry validates it against.
//
// The paper's contribution is a *tunable* criticality test (α, β, γ), yet
// until this layer existed every parameter sweep needed bespoke C++ around
// zero-argument factories. A spec names an estimator and overrides any of
// the knobs it declares:
//
//   "ACBM"                         — all defaults (bare names stay valid)
//   "ACBM:alpha=500,beta=8"        — partial override
//   "FSBM:dec=quincunx"            — enum-valued knob
//
// Each registered estimator declares its knobs as ParamDescs (typed default,
// range, help line); EstimatorRegistry::create binds a spec's key=value
// pairs against them into a ParamSet — unknown keys, malformed numbers and
// out-of-range values all fail with a message that lists every valid key —
// and hands the ParamSet to the factory. ParamSet::to_spec() renders the
// canonical full spec back out, so artifacts can stamp the exact
// configuration that produced them.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/kv.hpp"

namespace acbm::me {

/// Syntactic form of a spec: the estimator name plus raw key=value pairs in
/// source order. Purely textual — binding against an estimator's descriptors
/// happens in ParamSet::bind.
struct EstimatorSpec {
  std::string name;
  std::vector<util::KeyValue> params;

  /// Splits "NAME" or "NAME:key=val,..." (duplicate keys rejected).
  /// @throws util::SpecError on empty names or malformed pair lists
  [[nodiscard]] static EstimatorSpec parse(std::string_view spec);

  /// Renders back into the grammar (exactly the pairs held, not defaults).
  [[nodiscard]] std::string to_string() const;
};

/// Declares one estimator knob: key, type, typed default, range.
struct ParamDesc {
  enum class Type { kDouble, kInt, kBool, kEnum };

  std::string key;
  Type type = Type::kDouble;
  std::string help;              ///< one line for usage/error text
  double def = 0.0;              ///< default for kDouble/kInt/kBool (0/1)
  double min_value = 0.0;        ///< inclusive range for kDouble/kInt
  double max_value = 0.0;
  std::vector<std::string> choices;  ///< kEnum value set
  std::string def_choice;            ///< kEnum default

  /// Convenience constructors mirroring how descriptors read in
  /// registration code.
  [[nodiscard]] static ParamDesc number(std::string key, double def,
                                        double min_value, double max_value,
                                        std::string help);
  [[nodiscard]] static ParamDesc integer(std::string key, std::int64_t def,
                                         std::int64_t min_value,
                                         std::int64_t max_value,
                                         std::string help);
  [[nodiscard]] static ParamDesc boolean(std::string key, bool def,
                                         std::string help);
  [[nodiscard]] static ParamDesc choice(std::string key,
                                        std::vector<std::string> choices,
                                        std::string def_choice,
                                        std::string help);

  /// "alpha=1000 (0..1e+18): T1 additive threshold" — the line error
  /// messages and --help print per knob.
  [[nodiscard]] std::string describe() const;

  /// The default rendered as spec text ("1000", "quincunx", "1").
  [[nodiscard]] std::string default_text() const;
};

/// The validated, fully-defaulted parameter values handed to a factory.
/// Every declared key is present (explicit or default); typed getters
/// assert the key was declared, so factories cannot typo silently.
class ParamSet {
 public:
  /// Binds `spec`'s pairs against `descs`. Unknown keys, type mismatches
  /// and out-of-range values throw util::SpecError; the unknown-key message
  /// lists every declared key with its default and range. `owner` names the
  /// estimator in diagnostics.
  [[nodiscard]] static ParamSet bind(const EstimatorSpec& spec,
                                     const std::vector<ParamDesc>& descs,
                                     std::string_view owner);

  [[nodiscard]] double get_double(std::string_view key) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key) const;
  [[nodiscard]] bool get_bool(std::string_view key) const;
  [[nodiscard]] const std::string& get_choice(std::string_view key) const;

  /// True when the spec set `key` explicitly (rather than the default
  /// applying).
  [[nodiscard]] bool explicitly_set(std::string_view key) const;

  /// Canonical spec: "NAME:key=val,..." with EVERY declared key at its
  /// effective value, in declaration order — stable across spellings of the
  /// same configuration, and parseable back into an equal ParamSet. For
  /// knob-less estimators this is the bare name.
  [[nodiscard]] const std::string& to_spec() const { return canonical_; }

  /// The estimator name the spec asked for.
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Value {
    const ParamDesc* desc = nullptr;
    double number = 0.0;      // kDouble/kInt/kBool payload
    std::string text;         // kEnum payload
    bool explicit_ = false;
  };
  [[nodiscard]] const Value& find(std::string_view key,
                                  ParamDesc::Type type) const;

  std::string name_;
  std::string canonical_;
  std::vector<Value> values_;  // declaration order, small N
};

/// One line per declared knob (or "(no parameters)") — the per-estimator
/// half of error/usage text.
[[nodiscard]] std::string describe_params(const std::vector<ParamDesc>& descs);

}  // namespace acbm::me
