#include "me/full_search.hpp"

#include "me/halfpel.hpp"
#include "me/search_support.hpp"

namespace acbm::me {

namespace {

/// Runs the integer raster scan; leaves `state` positioned at the best
/// integer candidate. Every candidate's SAD goes through SearchState and
/// therefore the dispatched simd::SadKernels table — FSBM is the most
/// SAD-bound estimator, so it sees the largest --kernel speedup.
void integer_scan(SearchState& state, const BlockContext& ctx) {
  // Even half-pel coordinates are the integer grid.
  const int min_x = ctx.window.min_x + (ctx.window.min_x & 1);
  const int min_y = ctx.window.min_y + (ctx.window.min_y & 1);
  for (int my = min_y; my <= ctx.window.max_y; my += 2) {
    for (int mx = min_x; mx <= ctx.window.max_x; mx += 2) {
      state.try_candidate({mx, my});
    }
  }
}

}  // namespace

EstimateResult FullSearch::estimate(const BlockContext& ctx) {
  if (pattern_ != DecimationPattern::kNone) {
    return estimate_decimated_full_search(ctx, pattern_);
  }
  SearchState state(ctx);
  integer_scan(state, ctx);
  refine_halfpel(state);
  EstimateResult result = state.result();
  result.used_full_search = true;
  return result;
}

FullSearchResult FullSearch::search_full(const BlockContext& ctx) const {
  SearchState state(ctx);
  integer_scan(state, ctx);

  FullSearchResult full;
  full.best_integer_mv = state.best_mv();
  full.best_integer_sad = state.best_sad();
  full.integer_positions = state.positions();
  full.integer_sad_sum = state.sad_sum();

  refine_halfpel(state);
  full.best = state.result();
  full.best.used_full_search = true;
  return full;
}

}  // namespace acbm::me
