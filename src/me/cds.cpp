#include "me/cds.hpp"

#include "me/halfpel.hpp"
#include "me/search_support.hpp"

namespace acbm::me {

namespace {

// Half-pel offsets. The small cross probes the four axis neighbours at one
// integer sample; the large cross extends to two samples.
constexpr Mv kSmallCross[] = {{0, -2}, {-2, 0}, {2, 0}, {0, 2}};
constexpr Mv kLargeCross[] = {{0, -4}, {-4, 0}, {4, 0}, {0, 4}};
constexpr Mv kLdsp[] = {{0, -4}, {-2, -2}, {2, -2}, {-4, 0}, {4, 0},
                        {-2, 2}, {2, 2},  {0, 4}};
constexpr Mv kSdsp[] = {{0, -2}, {-2, 0}, {2, 0}, {0, 2}};

}  // namespace

EstimateResult CrossDiamondSearch::estimate(const BlockContext& ctx) {
  SearchState state(ctx, /*track_visited=*/true);

  // Stage 1: cross search around zero.
  state.try_candidate({0, 0});
  for (const Mv& offset : kSmallCross) {
    state.try_candidate(offset);
  }
  // First halfway-stop: stationary block.
  if (state.best_mv() == Mv{0, 0}) {
    refine_halfpel(state);
    return state.result();
  }
  for (const Mv& offset : kLargeCross) {
    state.try_candidate(offset);
  }
  // Second halfway-stop: quasi-stationary (best on the small cross).
  const Mv after_cross = state.best_mv();
  if (after_cross.linf() <= 2) {
    const Mv center = after_cross;
    for (const Mv& offset : kSdsp) {
      state.try_candidate({center.x + offset.x, center.y + offset.y});
    }
    refine_halfpel(state);
    return state.result();
  }

  // Stage 2: diamond recentring as in DS.
  const int max_moves =
      (ctx.window.max_x - ctx.window.min_x + ctx.window.max_y -
       ctx.window.min_y) / 2 + 2;
  for (int move = 0; move < max_moves; ++move) {
    const Mv center = state.best_mv();
    bool moved = false;
    for (const Mv& offset : kLdsp) {
      moved |= state.try_candidate({center.x + offset.x, center.y + offset.y});
    }
    if (!moved) {
      break;
    }
  }
  const Mv center = state.best_mv();
  for (const Mv& offset : kSdsp) {
    state.try_candidate({center.x + offset.x, center.y + offset.y});
  }

  refine_halfpel(state);
  return state.result();
}

}  // namespace acbm::me
