#pragma once
// Shared value types for the motion-estimation library.
//
// Motion vectors are stored in HALF-PEL units throughout (H.263 convention):
// mv = {3, -2} means +1.5 samples right, 1 sample up. Integer-pel search
// operates on even values; half-pel refinement toggles the low bit.

#include <cstdint>

namespace acbm::me {

/// Macroblock size used by the paper (16×16 luma).
inline constexpr int kBlockSize = 16;

/// A motion vector in half-pel units.
struct Mv {
  int x = 0;
  int y = 0;

  friend bool operator==(const Mv&, const Mv&) = default;

  [[nodiscard]] Mv operator+(const Mv& o) const { return {x + o.x, y + o.y}; }
  [[nodiscard]] Mv operator-(const Mv& o) const { return {x - o.x, y - o.y}; }

  /// True when both components sit on the integer-pel grid.
  [[nodiscard]] bool is_integer() const {
    return (x & 1) == 0 && (y & 1) == 0;
  }

  /// Chebyshev (L∞) norm in half-pel units; the characterization harness
  /// classifies MV errors by this metric.
  [[nodiscard]] int linf() const {
    const int ax = x < 0 ? -x : x;
    const int ay = y < 0 ? -y : y;
    return ax > ay ? ax : ay;
  }
};

/// Creates a half-pel Mv from integer-pel components.
[[nodiscard]] constexpr Mv mv_from_fullpel(int fx, int fy) {
  return {fx * 2, fy * 2};
}

/// Result of one block's motion search.
struct EstimateResult {
  Mv mv;                        ///< chosen vector, half-pel units
  std::uint32_t sad = 0;        ///< SAD at the chosen position
  std::uint32_t positions = 0;  ///< candidate positions evaluated (SAD calls)
  bool used_full_search = false;  ///< ACBM: block was classified critical
};

}  // namespace acbm::me
