#include "me/fss.hpp"

#include "me/halfpel.hpp"
#include "me/search_support.hpp"

namespace acbm::me {

EstimateResult Fss::estimate(const BlockContext& ctx) {
  SearchState state(ctx, /*track_visited=*/true);
  state.try_candidate({0, 0});

  // Recentring phase: 9-point ±2-integer pattern (±4 half-pel). The visited
  // set makes re-probed points free, matching the algorithm's "evaluate only
  // the new points" accounting.
  const int kStep = 4;  // half-pel units = 2 integer samples
  // Bounded by the worst case of walking across the whole window.
  const int max_moves =
      (ctx.window.max_x - ctx.window.min_x) / kStep +
      (ctx.window.max_y - ctx.window.min_y) / kStep + 2;
  for (int move = 0; move < max_moves; ++move) {
    const Mv center = state.best_mv();
    bool moved = false;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) {
          continue;
        }
        moved |= state.try_candidate(
            {center.x + dx * kStep, center.y + dy * kStep});
      }
    }
    if (!moved) {
      break;  // minimum is at the pattern centre — shrink
    }
  }

  // Final stage: 3×3 at ±1 integer around the centre.
  const Mv center = state.best_mv();
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) {
        continue;
      }
      state.try_candidate({center.x + dx * 2, center.y + dy * 2});
    }
  }

  refine_halfpel(state);
  return state.result();
}

}  // namespace acbm::me
