#include "me/tss.hpp"

#include <algorithm>

#include "me/halfpel.hpp"
#include "me/search_support.hpp"

namespace acbm::me {

EstimateResult Tss::estimate(const BlockContext& ctx) {
  SearchState state(ctx, /*track_visited=*/true);
  state.try_candidate({0, 0});

  // Initial step: largest power of two not exceeding half the range
  // (in half-pel units the integer range is window.max_x / 2).
  const int range = std::max(ctx.window.max_x, ctx.window.max_y) / 2;
  int step = 1;
  while (step * 2 <= (range + 1) / 2) {
    step *= 2;
  }

  for (; step >= 1; step /= 2) {
    const Mv center = state.best_mv();
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) {
          continue;
        }
        state.try_candidate(
            {center.x + dx * 2 * step, center.y + dy * 2 * step});
      }
    }
  }

  refine_halfpel(state);
  return state.result();
}

}  // namespace acbm::me
