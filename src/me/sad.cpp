#include "me/sad.hpp"

#include <cstdlib>

#include "simd/dispatch.hpp"

namespace acbm::me {

std::uint32_t sad_block(const video::Plane& cur, int cx, int cy,
                        const video::Plane& ref, int rx, int ry, int bw,
                        int bh, std::uint32_t early_exit) {
  const simd::SadKernels& k = simd::active_kernels();
  return k.sad(cur.row(cy) + cx, cur.stride(), ref.row(ry) + rx, ref.stride(),
               bw, bh, early_exit);
}

std::uint32_t sad_block_halfpel(const video::Plane& cur, int cx, int cy,
                                const video::HalfpelPlanes& ref, int hx,
                                int hy, int bw, int bh,
                                std::uint32_t early_exit) {
  const int phase_h = hx & 1;
  const int phase_v = hy & 1;
  const int rx = (hx - phase_h) >> 1;
  const int ry = (hy - phase_v) >> 1;
  // Fused interpolate+SAD straight off the integer plane: no phase plane is
  // ever touched, so the lazy HalfpelPlanes stays a plain snapshot for
  // encodes that only match.
  const video::Plane& p = ref.integer_plane();
  const simd::SadKernels& k = simd::active_kernels();
  return k.sad_halfpel(cur.row(cy) + cx, cur.stride(), p.row(ry) + rx,
                       p.stride(), phase_h, phase_v, bw, bh, early_exit);
}

std::uint32_t block_mean(const video::Plane& cur, int cx, int cy, int bw,
                         int bh) {
  std::uint32_t sum = 0;
  for (int y = 0; y < bh; ++y) {
    const std::uint8_t* a = cur.row(cy + y) + cx;
    for (int x = 0; x < bw; ++x) {
      sum += a[x];
    }
  }
  const std::uint32_t n = static_cast<std::uint32_t>(bw * bh);
  return n > 0 ? (sum + n / 2) / n : 0;
}

std::uint32_t intra_sad(const video::Plane& cur, int cx, int cy, int bw,
                        int bh) {
  const int mu = static_cast<int>(block_mean(cur, cx, cy, bw, bh));
  std::uint32_t total = 0;
  for (int y = 0; y < bh; ++y) {
    const std::uint8_t* a = cur.row(cy + y) + cx;
    for (int x = 0; x < bw; ++x) {
      total += static_cast<std::uint32_t>(std::abs(static_cast<int>(a[x]) - mu));
    }
  }
  return total;
}

std::uint64_t ssd_block(const video::Plane& cur, int cx, int cy,
                        const video::Plane& ref, int rx, int ry, int bw,
                        int bh) {
  std::uint64_t total = 0;
  for (int y = 0; y < bh; ++y) {
    const std::uint8_t* a = cur.row(cy + y) + cx;
    const std::uint8_t* b = ref.row(ry + y) + rx;
    for (int x = 0; x < bw; ++x) {
      const int d = static_cast<int>(a[x]) - static_cast<int>(b[x]);
      total += static_cast<std::uint64_t>(d * d);
    }
  }
  return total;
}

}  // namespace acbm::me
