#include "me/window.hpp"

#include <algorithm>

namespace acbm::me {

Mv SearchWindow::clamp(Mv mv) const {
  return {std::clamp(mv.x, min_x, max_x), std::clamp(mv.y, min_y, max_y)};
}

int SearchWindow::fullpel_positions() const {
  // Integer positions are the even half-pel coordinates within the bounds.
  auto count_even = [](int lo, int hi) {
    if (lo > hi) {
      return 0;
    }
    const int first = lo + (lo & 1);        // round up to even
    const int last = hi - (hi & 1);         // round down to even
    return first > last ? 0 : (last - first) / 2 + 1;
  };
  return count_even(min_x, max_x) * count_even(min_y, max_y);
}

SearchWindow unrestricted_window(int range_p) {
  return {-2 * range_p, 2 * range_p, -2 * range_p, 2 * range_p};
}

SearchWindow restricted_window(int range_p, int block_x, int block_y,
                               int block_w, int block_h, int pic_w, int pic_h,
                               int slack) {
  SearchWindow w = unrestricted_window(range_p);
  w.min_x = std::max(w.min_x, 2 * (-block_x - slack));
  w.max_x = std::min(w.max_x, 2 * (pic_w - block_w - block_x + slack));
  w.min_y = std::max(w.min_y, 2 * (-block_y - slack));
  w.max_y = std::min(w.max_y, 2 * (pic_h - block_h - block_y + slack));
  return w;
}

}  // namespace acbm::me
