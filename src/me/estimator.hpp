#pragma once
// The common interface every motion-search algorithm implements.
//
// The encoder, the benches and the characterization harness are all written
// against MotionEstimator, so FSBM / PBM / ACBM / TSS / 4SS / DS / CDS are
// interchangeable — exactly the comparison structure of the paper's §4.

#include <memory>
#include <string_view>

#include "me/cost.hpp"
#include "me/mv_field.hpp"
#include "me/types.hpp"
#include "me/window.hpp"
#include "video/interp.hpp"
#include "video/plane.hpp"

namespace acbm::me {

/// @brief Everything an algorithm may consult to estimate one block's
/// vector.
///
/// Pointers reference caller-owned data and must outlive the call. The
/// struct is assembled per macroblock by the encoder pipeline (or by a
/// bench/test harness) and passed by const reference, so estimators never
/// own or mutate frame state.
struct BlockContext {
  const video::Plane* cur = nullptr;          ///< current luma plane
  const video::HalfpelPlanes* ref = nullptr;  ///< interpolated reference
  int x = 0;                ///< block top-left, samples
  int y = 0;
  int bx = 0;               ///< macroblock index
  int by = 0;
  int bw = kBlockSize;
  int bh = kBlockSize;
  SearchWindow window;      ///< allowed MV range (half-pel units)
  /// Cost model. The paper's FSBM/PBM select by pure SAD, so the default
  /// λ = 0 makes cost ≡ SAD; callers may enable rate-aware search by
  /// supplying a λ > 0 model.
  MotionCost cost{0.0};
  bool half_pel = true;     ///< perform the final half-pel refinement
  /// Spatial predictors: the current frame's field, filled up to but not
  /// including this block (raster order). May be null (no spatial preds).
  const MvField* cur_field = nullptr;
  /// Temporal predictors: the previous frame's complete field. May be null.
  const MvField* prev_field = nullptr;
  int qp = 16;              ///< quantiser, consulted by adaptive algorithms
  /// Display index of the frame being encoded. Purely informational (no
  /// search decision may depend on it); ACBM stamps it into its decision
  /// log so logs from parallel workers can be merged back into encode order.
  int frame = 0;
};

/// @brief The interface every motion-search algorithm implements.
///
/// Implementations are interchangeable across the encoder, the benches and
/// the characterization harness. Construction normally goes through
/// me::EstimatorRegistry / core::builtin_estimators(); every SAD an
/// implementation computes routes through me::sad_block* and therefore the
/// runtime-dispatched SIMD kernel table (simd/dispatch.hpp).
class MotionEstimator {
 public:
  virtual ~MotionEstimator() = default;

  /// @brief Estimates the motion vector for one block.
  ///
  /// Implementations must count every SAD evaluation in
  /// EstimateResult::positions — Table 1 of the paper is regenerated from
  /// these counters, and they must not depend on thread count or kernel
  /// variant.
  ///
  /// @param ctx caller-owned per-block inputs (see BlockContext)
  /// @return the chosen vector plus its SAD and the evaluation count
  virtual EstimateResult estimate(const BlockContext& ctx) = 0;

  /// @brief Stable identifier used in bench output and as the registry key
  /// ("FSBM", "PBM", "ACBM", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// @brief Clears any cross-frame state (ACBM statistics, etc.). Called
  /// between sequences.
  virtual void reset() {}

  /// @brief Returns an estimator with identical configuration (search
  /// parameters, logging flags) but FRESH per-sequence state: statistics
  /// and decision logs start empty.
  ///
  /// The parallel encoding pipeline clones one estimator per worker so
  /// concurrent rows never share mutable state; the workers' statistics
  /// flow back through merge_stats().
  [[nodiscard]] virtual std::unique_ptr<MotionEstimator> clone() const = 0;

  /// @brief Folds `worker`'s accumulated statistics into this estimator
  /// and clears them from `worker`.
  ///
  /// Drain semantics, so a worker can be merged after every frame without
  /// double counting. Stateless estimators inherit this no-op.
  ///
  /// @param worker the same concrete type, typically a clone() of this
  ///        estimator
  virtual void merge_stats(MotionEstimator& worker) { (void)worker; }
};

}  // namespace acbm::me
