#include "me/cost.hpp"

#include "util/expgolomb.hpp"

namespace acbm::me {

std::uint32_t mv_rate_bits(Mv mv, Mv pred) {
  const Mv d = mv - pred;
  return static_cast<std::uint32_t>(util::se_bit_length(d.x) +
                                    util::se_bit_length(d.y));
}

}  // namespace acbm::me
