#include "me/ds.hpp"

#include "me/halfpel.hpp"
#include "me/search_support.hpp"

namespace acbm::me {

namespace {

// Offsets in half-pel units (integer grid ×2).
constexpr Mv kLdsp[] = {{0, -4}, {-2, -2}, {2, -2}, {-4, 0}, {4, 0},
                        {-2, 2}, {2, 2},  {0, 4}};
constexpr Mv kSdsp[] = {{0, -2}, {-2, 0}, {2, 0}, {0, 2}};

}  // namespace

EstimateResult DiamondSearch::estimate(const BlockContext& ctx) {
  SearchState state(ctx, /*track_visited=*/true);
  state.try_candidate({0, 0});

  const int max_moves =
      (ctx.window.max_x - ctx.window.min_x + ctx.window.max_y -
       ctx.window.min_y) / 2 + 2;
  for (int move = 0; move < max_moves; ++move) {
    const Mv center = state.best_mv();
    bool moved = false;
    for (const Mv& offset : kLdsp) {
      moved |= state.try_candidate({center.x + offset.x, center.y + offset.y});
    }
    if (!moved) {
      break;
    }
  }

  const Mv center = state.best_mv();
  for (const Mv& offset : kSdsp) {
    state.try_candidate({center.x + offset.x, center.y + offset.y});
  }

  refine_halfpel(state);
  return state.result();
}

}  // namespace acbm::me
