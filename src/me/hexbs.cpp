#include "me/hexbs.hpp"

#include "me/halfpel.hpp"
#include "me/search_support.hpp"

namespace acbm::me {

namespace {

// Half-pel offsets (integer grid ×2): hexagon with horizontal long axis.
constexpr Mv kLargeHexagon[] = {{-4, 0}, {4, 0},  {-2, -4},
                                {2, -4}, {-2, 4}, {2, 4}};
// Final refinement: the 8-point square rather than the original 4-point
// diamond — the diamond cannot reach diagonally-adjacent integer positions,
// a known HEXBS weakness; production implementations (e.g. x264's hex)
// finish with the square for exactly this reason.
constexpr Mv kSquare[] = {{-2, -2}, {0, -2}, {2, -2}, {-2, 0},
                          {2, 0},   {-2, 2}, {0, 2},  {2, 2}};

}  // namespace

EstimateResult HexagonSearch::estimate(const BlockContext& ctx) {
  SearchState state(ctx, /*track_visited=*/true);
  state.try_candidate({0, 0});

  const int max_moves =
      (ctx.window.max_x - ctx.window.min_x + ctx.window.max_y -
       ctx.window.min_y) / 2 + 2;
  for (int move = 0; move < max_moves; ++move) {
    const Mv center = state.best_mv();
    bool moved = false;
    for (const Mv& offset : kLargeHexagon) {
      moved |= state.try_candidate({center.x + offset.x, center.y + offset.y});
    }
    if (!moved) {
      break;
    }
  }

  const Mv center = state.best_mv();
  for (const Mv& offset : kSquare) {
    state.try_candidate({center.x + offset.x, center.y + offset.y});
  }

  refine_halfpel(state);
  return state.result();
}

}  // namespace acbm::me
