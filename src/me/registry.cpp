#include "me/registry.hpp"

#include <stdexcept>
#include <utility>

namespace acbm::me {

void EstimatorRegistry::add(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("estimator registry: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("estimator registry: null factory for " +
                                name);
  }
  if (contains(name)) {
    throw std::invalid_argument("estimator registry: duplicate name " + name);
  }
  entries_.push_back({std::move(name), std::move(factory)});
}

bool EstimatorRegistry::contains(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<MotionEstimator> EstimatorRegistry::create(
    std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return entry.factory();
    }
  }
  std::string message = "unknown estimator \"";
  message.append(name);
  message += "\" (registered:";
  for (const Entry& entry : entries_) {
    message += ' ';
    message += entry.name;
  }
  message += ')';
  throw std::invalid_argument(message);
}

std::vector<std::string> EstimatorRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    result.push_back(entry.name);
  }
  return result;
}

}  // namespace acbm::me
