#include "me/registry.hpp"

#include <stdexcept>
#include <utility>

namespace acbm::me {

void EstimatorRegistry::add(std::string name, std::vector<ParamDesc> params,
                            Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("estimator registry: empty name");
  }
  if (name.find(':') != std::string::npos ||
      name.find(',') != std::string::npos ||
      name.find('=') != std::string::npos) {
    throw std::invalid_argument(
        "estimator registry: name \"" + name +
        "\" contains a character the spec grammar reserves (:,=)");
  }
  if (!factory) {
    throw std::invalid_argument("estimator registry: null factory for " +
                                name);
  }
  if (contains(name)) {
    throw std::invalid_argument("estimator registry: duplicate name " + name);
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].key.empty()) {
      throw std::invalid_argument("estimator registry: " + name +
                                  " declares a parameter with an empty key");
    }
    for (std::size_t j = i + 1; j < params.size(); ++j) {
      if (params[i].key == params[j].key) {
        throw std::invalid_argument("estimator registry: " + name +
                                    " declares duplicate parameter key " +
                                    params[i].key);
      }
    }
  }
  entries_.push_back({std::move(name), std::move(params), std::move(factory)});
}

void EstimatorRegistry::add(
    std::string name,
    std::function<std::unique_ptr<MotionEstimator>()> factory) {
  if (!factory) {
    throw std::invalid_argument("estimator registry: null factory for " +
                                name);
  }
  add(std::move(name), {},
      [factory = std::move(factory)](const ParamSet&) { return factory(); });
}

bool EstimatorRegistry::contains(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return true;
    }
  }
  return false;
}

const EstimatorRegistry::Entry& EstimatorRegistry::entry_for(
    std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return entry;
    }
  }
  std::string message = "unknown estimator \"";
  message.append(name);
  message += "\" (registered:";
  for (const Entry& entry : entries_) {
    message += ' ';
    message += entry.name;
  }
  message += ')';
  throw util::SpecError(message);
}

std::unique_ptr<MotionEstimator> EstimatorRegistry::create(
    std::string_view spec) const {
  return create(EstimatorSpec::parse(spec));
}

std::unique_ptr<MotionEstimator> EstimatorRegistry::create(
    const EstimatorSpec& spec) const {
  const Entry& entry = entry_for(spec.name);
  return entry.factory(ParamSet::bind(spec, entry.params, entry.name));
}

std::string EstimatorRegistry::canonical_spec(std::string_view spec) const {
  const EstimatorSpec parsed = EstimatorSpec::parse(spec);
  const Entry& entry = entry_for(parsed.name);
  return ParamSet::bind(parsed, entry.params, entry.name).to_spec();
}

const std::vector<ParamDesc>& EstimatorRegistry::params(
    std::string_view name) const {
  return entry_for(name).params;
}

std::vector<std::string> EstimatorRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    result.push_back(entry.name);
  }
  return result;
}

std::string EstimatorRegistry::spec_usage() const {
  std::string out =
      "estimator spec grammar: NAME or NAME:key=val[,key=val...]\n"
      "(a bare NAME uses every default; keys are validated per estimator)\n";
  for (const Entry& entry : entries_) {
    out += entry.name + '\n';
    out += describe_params(entry.params);
  }
  return out;
}

}  // namespace acbm::me
