#pragma once
// Sum-of-absolute-differences kernels plus the paper's two block statistics.
//
// Every matching metric in the repository funnels through these functions so
// the complexity accounting (Table 1 counts SAD evaluations) has a single
// source of truth. Since the SIMD subsystem landed, the SAD entry points are
// thin wrappers over the runtime-dispatched kernel table in simd/dispatch.hpp
// (scalar reference, SSE2, AVX2 — all bit-identical); the block statistics
// (Intra_SAD, mean, SSD) stay scalar here because they run once per block,
// not once per candidate.
//
// EARLY-EXIT CONTRACT (shared by every kernel variant): sad_block compares
// its running total against `early_exit` after each group of
// simd::kEarlyExitRowQuantum (= 4) rows — not after every row — and after
// the final, possibly shorter, group. On exceeding the bound it returns the
// exact partial SAD accumulated so far, which is > early_exit (safe for
// min-tracking loops) and ≤ the true block SAD. Hoisting the check to
// row-group granularity is what allows vector kernels to batch multiple
// rows per instruction while returning bit-identical values to the scalar
// reference, checkpoint for checkpoint.

#include <cstdint>

#include "video/interp.hpp"
#include "video/plane.hpp"

namespace acbm::me {

/// Sentinel meaning "no early-exit bound".
inline constexpr std::uint32_t kNoEarlyExit = 0xFFFFFFFFu;

/// @brief SAD between the `bw`×`bh` block of `cur` at (cx, cy) and the block
/// of `ref` at (rx, ry). Reference coordinates may reach into the border.
///
/// Routes through the active simd::SadKernels table. If the running sum
/// exceeds `early_exit` at a row-group checkpoint (see the contract above)
/// the function returns a partial value > early_exit without finishing the
/// block.
[[nodiscard]] std::uint32_t sad_block(const video::Plane& cur, int cx, int cy,
                                      const video::Plane& ref, int rx, int ry,
                                      int bw, int bh,
                                      std::uint32_t early_exit = kNoEarlyExit);

/// @brief SAD against a half-pel reference position. (hx, hy) is the
/// half-pel coordinate of the reference block origin: hx = 2·rx + phase.
///
/// Resolves the coordinate to an integer-plane origin plus phase pair and
/// routes through the active kernel table's FUSED interpolate+SAD slot —
/// reference samples are synthesised on the fly (H.263 rounding), no
/// pre-interpolated phase plane is read or built. Same early-exit contract
/// (and bit-identical values) as matching a pre-interpolated plane with
/// sad_block.
[[nodiscard]] std::uint32_t sad_block_halfpel(
    const video::Plane& cur, int cx, int cy, const video::HalfpelPlanes& ref,
    int hx, int hy, int bw, int bh,
    std::uint32_t early_exit = kNoEarlyExit);

/// The paper's Intra_SAD: Σ |p(i,j) − µ| over the block, with µ the block
/// mean (rounded to nearest). High values identify textured blocks.
[[nodiscard]] std::uint32_t intra_sad(const video::Plane& cur, int cx, int cy,
                                      int bw, int bh);

/// Block mean, rounded to nearest integer — exposed for tests and reuse by
/// the codec's INTRA/INTER decision.
[[nodiscard]] std::uint32_t block_mean(const video::Plane& cur, int cx, int cy,
                                       int bw, int bh);

/// Sum of squared differences (used by tests as an independent check and by
/// the codec's mode decision experiments).
[[nodiscard]] std::uint64_t ssd_block(const video::Plane& cur, int cx, int cy,
                                      const video::Plane& ref, int rx, int ry,
                                      int bw, int bh);

}  // namespace acbm::me
