#pragma once
// DS — diamond search (Zhu & Ma), the de-facto standard fast search and the
// basis of the cross-diamond variant the paper cites as [5].
//
// A large diamond (LDSP, 9 points at L1 distance ≤ 2) recentres until its
// minimum is the centre, then a small diamond (SDSP, 4 points at distance 1)
// polishes, then half-pel refinement.

#include "me/estimator.hpp"

namespace acbm::me {

class DiamondSearch final : public MotionEstimator {
 public:
  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "DS"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<DiamondSearch>(*this);
  }
};

}  // namespace acbm::me
