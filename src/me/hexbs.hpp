#pragma once
// HEXBS — hexagon-based search (Zhu, Lin & Chau, 2002), the successor of
// diamond search in the candidate-reduction family the paper's introduction
// surveys. A 6-point large hexagon recentres toward the minimum (only 3 new
// points per move), then an 8-point square polishes (see the
// note in hexbs.cpp), then half-pel.
// Included as an extension baseline: fewer probes per move than DS at the
// same reliability on natural content.

#include "me/estimator.hpp"

namespace acbm::me {

class HexagonSearch final : public MotionEstimator {
 public:
  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "HEXBS"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<HexagonSearch>(*this);
  }
};

}  // namespace acbm::me
