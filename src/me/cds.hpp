#pragma once
// CDS — cross-diamond search (Cheung & Po [5] of the paper's references).
//
// Exploits the cross-centre-biased distribution of real motion vectors:
// a 9-point cross pattern first (with a halfway-stop for stationary and
// quasi-stationary blocks), then diamond stages as in DS. Cited by the
// paper as representative of the candidate-reduction family.

#include "me/estimator.hpp"

namespace acbm::me {

class CrossDiamondSearch final : public MotionEstimator {
 public:
  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "CDS"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<CrossDiamondSearch>(*this);
  }
};

}  // namespace acbm::me
