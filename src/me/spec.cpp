#include "me/spec.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace acbm::me {

// ----------------------------------------------------------- EstimatorSpec

EstimatorSpec EstimatorSpec::parse(std::string_view spec) {
  EstimatorSpec parsed;
  const std::size_t colon = spec.find(':');
  std::string_view name = spec.substr(0, colon);
  while (!name.empty() && (name.front() == ' ' || name.front() == '\t')) {
    name.remove_prefix(1);
  }
  while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
    name.remove_suffix(1);
  }
  if (name.empty()) {
    throw util::SpecError("spec: empty estimator name in \"" +
                          std::string(spec) + '"');
  }
  parsed.name = std::string(name);
  if (colon != std::string_view::npos) {
    const std::string_view tail = spec.substr(colon + 1);
    parsed.params = util::parse_kv_list(tail);
    if (parsed.params.empty()) {
      throw util::SpecError("spec: \"" + std::string(spec) +
                            "\" has ':' but no key=value pairs (drop the "
                            "colon for all-default parameters)");
    }
  }
  return parsed;
}

std::string EstimatorSpec::to_string() const {
  if (params.empty()) {
    return name;
  }
  return name + ':' + util::format_kv_list(params);
}

// --------------------------------------------------------------- ParamDesc

ParamDesc ParamDesc::number(std::string key, double def, double min_value,
                            double max_value, std::string help) {
  ParamDesc desc;
  desc.key = std::move(key);
  desc.type = Type::kDouble;
  desc.help = std::move(help);
  desc.def = def;
  desc.min_value = min_value;
  desc.max_value = max_value;
  return desc;
}

ParamDesc ParamDesc::integer(std::string key, std::int64_t def,
                             std::int64_t min_value, std::int64_t max_value,
                             std::string help) {
  ParamDesc desc;
  desc.key = std::move(key);
  desc.type = Type::kInt;
  desc.help = std::move(help);
  desc.def = static_cast<double>(def);
  desc.min_value = static_cast<double>(min_value);
  desc.max_value = static_cast<double>(max_value);
  return desc;
}

ParamDesc ParamDesc::boolean(std::string key, bool def, std::string help) {
  ParamDesc desc;
  desc.key = std::move(key);
  desc.type = Type::kBool;
  desc.help = std::move(help);
  desc.def = def ? 1.0 : 0.0;
  return desc;
}

ParamDesc ParamDesc::choice(std::string key, std::vector<std::string> choices,
                            std::string def_choice, std::string help) {
  ParamDesc desc;
  desc.key = std::move(key);
  desc.type = Type::kEnum;
  desc.help = std::move(help);
  desc.choices = std::move(choices);
  desc.def_choice = std::move(def_choice);
  return desc;
}

std::string ParamDesc::default_text() const {
  switch (type) {
    case Type::kDouble:
      return util::format_double(def);
    case Type::kInt:
      return std::to_string(static_cast<std::int64_t>(def));
    case Type::kBool:
      return def != 0.0 ? "1" : "0";
    case Type::kEnum:
      return def_choice;
  }
  return {};
}

std::string ParamDesc::describe() const {
  std::string line = key + '=' + default_text();
  switch (type) {
    case Type::kDouble:
      line += " (" + util::format_double(min_value) + ".." +
              util::format_double(max_value) + ")";
      break;
    case Type::kInt:
      line += " (" + std::to_string(static_cast<std::int64_t>(min_value)) +
              ".." + std::to_string(static_cast<std::int64_t>(max_value)) +
              ")";
      break;
    case Type::kBool:
      line += " (0|1)";
      break;
    case Type::kEnum: {
      line += " (";
      for (std::size_t i = 0; i < choices.size(); ++i) {
        if (i > 0) {
          line += '|';
        }
        line += choices[i];
      }
      line += ')';
      break;
    }
  }
  line += ": " + help;
  return line;
}

std::string describe_params(const std::vector<ParamDesc>& descs) {
  if (descs.empty()) {
    return "  (no parameters)\n";
  }
  std::string out;
  for (const ParamDesc& desc : descs) {
    out += "  " + desc.describe() + '\n';
  }
  return out;
}

// ---------------------------------------------------------------- ParamSet

ParamSet ParamSet::bind(const EstimatorSpec& spec,
                        const std::vector<ParamDesc>& descs,
                        std::string_view owner) {
  ParamSet set;
  set.name_ = spec.name;
  set.values_.reserve(descs.size());
  for (const ParamDesc& desc : descs) {
    Value value;
    value.desc = &desc;
    value.number = desc.def;
    value.text = desc.def_choice;
    set.values_.push_back(std::move(value));
  }

  for (const util::KeyValue& pair : spec.params) {
    Value* slot = nullptr;
    for (Value& value : set.values_) {
      if (value.desc->key == pair.first) {
        slot = &value;
        break;
      }
    }
    if (slot == nullptr) {
      std::string message = "estimator " + std::string(owner) +
                            ": unknown parameter \"" + pair.first +
                            "\"; valid keys:\n" + describe_params(descs);
      throw util::SpecError(message);
    }
    const ParamDesc& desc = *slot->desc;
    const std::string what =
        std::string(owner) + " parameter " + desc.key;
    switch (desc.type) {
      case ParamDesc::Type::kDouble: {
        const double number = util::parse_double_strict(pair.second, what);
        if (std::isnan(number) || number < desc.min_value ||
            number > desc.max_value) {
          throw util::SpecError(
              "spec: " + what + '=' + pair.second + " out of range [" +
              util::format_double(desc.min_value) + ", " +
              util::format_double(desc.max_value) + ']');
        }
        slot->number = number;
        break;
      }
      case ParamDesc::Type::kInt: {
        const std::int64_t number =
            util::parse_int_strict(pair.second, what);
        if (number < static_cast<std::int64_t>(desc.min_value) ||
            number > static_cast<std::int64_t>(desc.max_value)) {
          throw util::SpecError(
              "spec: " + what + '=' + pair.second + " out of range [" +
              std::to_string(static_cast<std::int64_t>(desc.min_value)) +
              ", " +
              std::to_string(static_cast<std::int64_t>(desc.max_value)) +
              ']');
        }
        slot->number = static_cast<double>(number);
        break;
      }
      case ParamDesc::Type::kBool:
        slot->number = util::parse_bool_strict(pair.second, what) ? 1.0 : 0.0;
        break;
      case ParamDesc::Type::kEnum: {
        bool known = false;
        for (const std::string& choice : desc.choices) {
          if (choice == pair.second) {
            known = true;
            break;
          }
        }
        if (!known) {
          std::string message = "spec: " + what + '=' + pair.second +
                                " is not one of {";
          for (std::size_t i = 0; i < desc.choices.size(); ++i) {
            if (i > 0) {
              message += ", ";
            }
            message += desc.choices[i];
          }
          message += '}';
          throw util::SpecError(message);
        }
        slot->text = pair.second;
        break;
      }
    }
    slot->explicit_ = true;
  }

  set.canonical_ = set.name_;
  for (std::size_t i = 0; i < set.values_.size(); ++i) {
    const Value& value = set.values_[i];
    set.canonical_ += i == 0 ? ':' : ',';
    set.canonical_ += value.desc->key;
    set.canonical_ += '=';
    switch (value.desc->type) {
      case ParamDesc::Type::kDouble:
        set.canonical_ += util::format_double(value.number);
        break;
      case ParamDesc::Type::kInt:
        set.canonical_ +=
            std::to_string(static_cast<std::int64_t>(value.number));
        break;
      case ParamDesc::Type::kBool:
        set.canonical_ += value.number != 0.0 ? "1" : "0";
        break;
      case ParamDesc::Type::kEnum:
        set.canonical_ += value.text;
        break;
    }
  }
  return set;
}

const ParamSet::Value& ParamSet::find(std::string_view key,
                                      ParamDesc::Type type) const {
  for (const Value& value : values_) {
    if (value.desc->key == key) {
      // Wrong-typed getter use is a programming error in the factory, not
      // user input; assert in debug, fall through in release.
      assert(value.desc->type == type);
      (void)type;
      return value;
    }
  }
  throw std::invalid_argument("estimator " + name_ +
                              ": factory asked for undeclared parameter \"" +
                              std::string(key) + '"');
}

double ParamSet::get_double(std::string_view key) const {
  return find(key, ParamDesc::Type::kDouble).number;
}

std::int64_t ParamSet::get_int(std::string_view key) const {
  return static_cast<std::int64_t>(find(key, ParamDesc::Type::kInt).number);
}

bool ParamSet::get_bool(std::string_view key) const {
  return find(key, ParamDesc::Type::kBool).number != 0.0;
}

const std::string& ParamSet::get_choice(std::string_view key) const {
  return find(key, ParamDesc::Type::kEnum).text;
}

bool ParamSet::explicitly_set(std::string_view key) const {
  for (const Value& value : values_) {
    if (value.desc->key == key) {
      return value.explicit_;
    }
  }
  return false;
}

}  // namespace acbm::me
