#include "me/halfpel.hpp"

namespace acbm::me {

void refine_halfpel(SearchState& state) {
  if (!state.ctx().half_pel) {
    return;
  }
  const Mv center = state.best_mv();
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) {
        continue;
      }
      state.try_candidate({center.x + dx, center.y + dy});
    }
  }
}

void descend(SearchState& state, int step_halfpel, int max_iterations) {
  for (int iter = 0; iter < max_iterations; ++iter) {
    const Mv center = state.best_mv();
    bool improved = false;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) {
          continue;
        }
        improved |= state.try_candidate(
            {center.x + dx * step_halfpel, center.y + dy * step_halfpel});
      }
    }
    if (!improved) {
      return;
    }
  }
}

}  // namespace acbm::me
