#include "me/pbm.hpp"

#include "me/halfpel.hpp"
#include "me/predictors.hpp"
#include "me/search_support.hpp"

namespace acbm::me {

EstimateResult Pbm::estimate(const BlockContext& ctx) {
  // Visited-tracking: predictors, descent and half-pel refinement may touch
  // the same position twice; each position must be paid for exactly once.
  SearchState state(ctx, /*track_visited=*/true);

  // Step 1+2: evaluate the predictor set, keep the lowest SAD.
  for (Mv cand : pbm_candidates(ctx)) {
    state.try_candidate(cand);
  }
  if (!state.has_best()) {
    // Degenerate window (can only happen with pathological clamping) —
    // fall back to the zero vector.
    state.try_candidate(ctx.window.clamp({0, 0}));
  }

  // Step 3a: bounded integer-pel descent around the best predictor.
  descend(state, /*step_halfpel=*/2, max_descent_iterations_);

  // Step 3b: half-pel refinement (paper: "normally, the refinement step is
  // performed in a half pixel grid").
  refine_halfpel(state);

  return state.result();
}

}  // namespace acbm::me
