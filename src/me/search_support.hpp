#pragma once
// Shared best-candidate tracking for all search algorithms.
//
// SearchState centralises three concerns every search loop has:
//   * evaluating a candidate through the single SAD entry point — which
//     routes through the runtime-dispatched SIMD kernel table via
//     me::sad_block_halfpel — so the position counters behind Table 1
//     cannot drift between algorithms or kernel variants,
//   * window membership,
//   * deterministic tie-breaking (cost, then |mv|∞, then raster order),
// plus an optional visited-set so pattern searches that revisit points
// (4SS/DS/CDS) neither recount nor recompute them.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "me/estimator.hpp"
#include "me/sad.hpp"

namespace acbm::me {

class SearchState {
 public:
  explicit SearchState(const BlockContext& ctx, bool track_visited = false)
      : ctx_(&ctx), track_visited_(track_visited) {}

  /// Evaluates `cand` (half-pel units) if it is inside the window and not
  /// yet visited. Returns true when the candidate became the new best.
  bool try_candidate(Mv cand) {
    if (!ctx_->window.contains(cand)) {
      return false;
    }
    if (track_visited_ && !mark_visited(cand)) {
      return false;
    }
    const std::uint32_t sad = sad_block_halfpel(
        *ctx_->cur, ctx_->x, ctx_->y, *ctx_->ref, ctx_->x * 2 + cand.x,
        ctx_->y * 2 + cand.y, ctx_->bw, ctx_->bh);
    ++positions_;
    sad_sum_ += sad;
    const std::uint64_t cost = ctx_->cost.cost_fixed(sad, cand);
    if (is_better(cost, cand)) {
      best_mv_ = cand;
      best_sad_ = sad;
      best_cost_ = cost;
      return true;
    }
    return false;
  }

  [[nodiscard]] Mv best_mv() const { return best_mv_; }
  [[nodiscard]] std::uint32_t best_sad() const { return best_sad_; }
  [[nodiscard]] std::uint32_t positions() const { return positions_; }
  /// Σ SAD over every evaluated candidate — the paper's SAD_deviation is
  /// sad_sum − positions·SAD_min (§3.1).
  [[nodiscard]] std::uint64_t sad_sum() const { return sad_sum_; }
  [[nodiscard]] bool has_best() const {
    return best_cost_ != kUnset;
  }

  [[nodiscard]] EstimateResult result() const {
    return {best_mv_, best_sad_, positions_, false};
  }

  [[nodiscard]] const BlockContext& ctx() const { return *ctx_; }

 private:
  static constexpr std::uint64_t kUnset = ~std::uint64_t{0};

  [[nodiscard]] bool is_better(std::uint64_t cost, Mv cand) const {
    if (cost != best_cost_) {
      return cost < best_cost_;
    }
    // Deterministic tie-breaks keep results independent of scan order:
    // prefer the shorter vector, then the earlier raster position.
    if (cand.linf() != best_mv_.linf()) {
      return cand.linf() < best_mv_.linf();
    }
    if (cand.y != best_mv_.y) {
      return cand.y < best_mv_.y;
    }
    return cand.x < best_mv_.x;
  }

  /// Returns false if `cand` was already visited; otherwise records it.
  bool mark_visited(Mv cand) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cand.x))
         << 32) |
        static_cast<std::uint32_t>(cand.y);
    if (std::find(visited_.begin(), visited_.end(), key) != visited_.end()) {
      return false;
    }
    visited_.push_back(key);
    return true;
  }

  const BlockContext* ctx_;
  bool track_visited_;
  Mv best_mv_{};
  std::uint32_t best_sad_ = 0;
  std::uint64_t best_cost_ = kUnset;
  std::uint32_t positions_ = 0;
  std::uint64_t sad_sum_ = 0;
  std::vector<std::uint64_t> visited_;  // small; linear scan beats hashing
};

}  // namespace acbm::me
