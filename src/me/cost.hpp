#pragma once
// The Lagrangian motion cost J(mv) = D(mv) + λ·R(mv) from §2.1 of the paper.
//
// D is the block SAD; R is the number of bits needed to transmit the vector,
// which depends on the predictor because H.263-family codecs code MVs
// differentially. The rate model here is the exact bit length our codec's
// entropy layer produces (signed exp-Golomb per component), so the search
// optimises the true transmitted rate rather than an approximation.

#include <cstdint>

#include "me/types.hpp"

namespace acbm::me {

/// Bits needed to code `mv` differentially against `pred` (both half-pel).
[[nodiscard]] std::uint32_t mv_rate_bits(Mv mv, Mv pred);

/// Lagrangian cost model for motion search.
class MotionCost {
 public:
  /// `lambda` converts bits into SAD units. The repository default follows
  /// λ_motion = kLambdaScale·Qp (SAD domain; see DESIGN.md §6).
  explicit MotionCost(double lambda, Mv pred = {}) : lambda_(lambda),
                                                     pred_(pred) {}

  static constexpr double kLambdaScale = 0.92;

  /// Builds the cost model for a quantiser step.
  [[nodiscard]] static MotionCost for_qp(int qp, Mv pred = {}) {
    return MotionCost(kLambdaScale * qp, pred);
  }

  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] Mv predictor() const { return pred_; }
  void set_predictor(Mv pred) { pred_ = pred; }

  /// J = SAD + λ·R(mv − pred).
  [[nodiscard]] double cost(std::uint32_t sad, Mv mv) const {
    return static_cast<double>(sad) +
           lambda_ * static_cast<double>(mv_rate_bits(mv, pred_));
  }

  /// Integer-scaled cost for tie-stable comparisons inside search loops
  /// (costs are compared, never accumulated, so scaling by 256 is exact
  /// enough for λ with two fractional digits).
  [[nodiscard]] std::uint64_t cost_fixed(std::uint32_t sad, Mv mv) const {
    return (static_cast<std::uint64_t>(sad) << 8) +
           static_cast<std::uint64_t>(lambda_ * 256.0) * mv_rate_bits(mv, pred_);
  }

 private:
  double lambda_;
  Mv pred_;
};

}  // namespace acbm::me
