#pragma once
// Spatio-temporal candidate predictors for PBM (paper §2.2, Fig. 2).
//
// For the shaded block mv0_t, the usable neighbours are the already-computed
// current-frame vectors (left, above, above-right — mv5_t..mv8_t do not exist
// yet) and the previous frame's field around the collocated position. The
// zero vector is always included: it is the best predictor for static
// content and costs nothing to transmit.

#include <array>
#include <cstdint>

#include "me/estimator.hpp"
#include "me/types.hpp"

namespace acbm::me {

/// Fixed-capacity candidate list (no heap traffic in the per-block path).
class CandidateList {
 public:
  static constexpr int kCapacity = 8;

  /// Appends `mv` unless it is a duplicate or the list is full.
  void push_unique(Mv mv);

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Mv operator[](int i) const { return mvs_[i]; }

  [[nodiscard]] const Mv* begin() const { return mvs_.data(); }
  [[nodiscard]] const Mv* end() const { return mvs_.data() + size_; }

 private:
  std::array<Mv, kCapacity> mvs_{};
  int size_ = 0;
};

/// Assembles the PBM candidate set for the block in `ctx`:
/// {0, spatial left/above/above-right, temporal collocated/right/below},
/// deduplicated and clamped into the search window.
[[nodiscard]] CandidateList pbm_candidates(const BlockContext& ctx);

}  // namespace acbm::me
