#include "me/predictors.hpp"

namespace acbm::me {

void CandidateList::push_unique(Mv mv) {
  if (size_ >= kCapacity) {
    return;
  }
  for (int i = 0; i < size_; ++i) {
    if (mvs_[i] == mv) {
      return;
    }
  }
  mvs_[size_++] = mv;
}

CandidateList pbm_candidates(const BlockContext& ctx) {
  CandidateList list;
  auto add = [&](Mv mv) { list.push_unique(ctx.window.clamp(mv)); };

  add({0, 0});

  if (ctx.cur_field != nullptr) {
    const MvField& f = *ctx.cur_field;
    if (f.valid(ctx.bx - 1, ctx.by)) {
      add(f.at(ctx.bx - 1, ctx.by));  // left (mv4_t)
    }
    if (f.valid(ctx.bx, ctx.by - 1)) {
      add(f.at(ctx.bx, ctx.by - 1));  // above (mv2_t)
    }
    if (f.valid(ctx.bx + 1, ctx.by - 1)) {
      add(f.at(ctx.bx + 1, ctx.by - 1));  // above-right (mv3_t)
    }
  }

  if (ctx.prev_field != nullptr) {
    const MvField& f = *ctx.prev_field;
    if (f.valid(ctx.bx, ctx.by)) {
      add(f.at(ctx.bx, ctx.by));  // collocated (mv0_{t-1})
    }
    if (f.valid(ctx.bx + 1, ctx.by)) {
      add(f.at(ctx.bx + 1, ctx.by));  // right of collocated (mv5_{t-1})
    }
    if (f.valid(ctx.bx, ctx.by + 1)) {
      add(f.at(ctx.bx, ctx.by + 1));  // below collocated (mv7_{t-1})
    }
  }

  return list;
}

}  // namespace acbm::me
