#include "me/ntss.hpp"

#include <algorithm>

#include "me/halfpel.hpp"
#include "me/search_support.hpp"

namespace acbm::me {

EstimateResult Ntss::estimate(const BlockContext& ctx) {
  SearchState state(ctx, /*track_visited=*/true);
  state.try_candidate({0, 0});

  const int range = std::max(ctx.window.max_x, ctx.window.max_y) / 2;
  int step = 1;
  while (step * 2 <= (range + 1) / 2) {
    step *= 2;
  }

  // First step: the step-s ring and the unit ring together.
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) {
        continue;
      }
      state.try_candidate({dx * 2 * step, dy * 2 * step});
      state.try_candidate({dx * 2, dy * 2});
    }
  }

  const Mv first = state.best_mv();
  if (first == Mv{0, 0}) {
    // First halfway stop: stationary block, 17 positions paid.
    refine_halfpel(state);
    return state.result();
  }
  if (first.linf() <= 2) {
    // Second halfway stop: minimum on the unit ring. Probe its own unit
    // neighbours (the visited set skips the ones the first step already
    // paid for — corners add 3 new points, edges add 5, as in the paper).
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) {
          continue;
        }
        state.try_candidate({first.x + dx * 2, first.y + dy * 2});
      }
    }
    refine_halfpel(state);
    return state.result();
  }

  // Otherwise: classic TSS continuation from the step-s winner.
  for (step /= 2; step >= 1; step /= 2) {
    const Mv center = state.best_mv();
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) {
          continue;
        }
        state.try_candidate(
            {center.x + dx * 2 * step, center.y + dy * 2 * step});
      }
    }
  }

  refine_halfpel(state);
  return state.result();
}

}  // namespace acbm::me
