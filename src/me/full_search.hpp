#pragma once
// FSBM — full search block matching (paper §2.3).
//
// Exhaustive raster scan of every integer-pel position in the window,
// followed by 8-point half-pel refinement. For the paper's p = 15 this is
// 961 + 8 = 969 SAD evaluations per block, the reference complexity against
// which Table 1 is normalised.

#include <cstdint>

#include "me/decimation.hpp"
#include "me/estimator.hpp"

namespace acbm::me {

/// Extended result used by the §3.1 characterization harness, which needs
/// the SAD distribution over the whole window, not just the minimum.
struct FullSearchResult {
  EstimateResult best;                  ///< final (half-pel) choice
  Mv best_integer_mv;                   ///< winner of the integer scan
  std::uint32_t best_integer_sad = 0;   ///< its SAD
  std::uint32_t integer_positions = 0;  ///< integer candidates evaluated
  /// Σ SAD over the integer scan; SAD_deviation = sad_sum − N·SAD_min.
  std::uint64_t integer_sad_sum = 0;

  /// The paper's SAD_deviation statistic (§3.1).
  [[nodiscard]] std::uint64_t sad_deviation() const {
    return integer_sad_sum - static_cast<std::uint64_t>(integer_positions) *
                                 best_integer_sad;
  }
};

class FullSearch final : public MotionEstimator {
 public:
  /// `pattern` optionally applies pixel decimation to the SAD (the second
  /// family of fast algorithms from the paper's introduction, refs [6–8]);
  /// kNone reproduces the exact FSBM of the paper.
  explicit FullSearch(DecimationPattern pattern = DecimationPattern::kNone)
      : pattern_(pattern) {}

  EstimateResult estimate(const BlockContext& ctx) override;

  /// Full-detail search for the characterization harness.
  [[nodiscard]] FullSearchResult search_full(const BlockContext& ctx) const;

  [[nodiscard]] std::string_view name() const override {
    return pattern_ == DecimationPattern::kNone ? "FSBM" : "FSBM-dec";
  }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<FullSearch>(*this);
  }

 private:
  DecimationPattern pattern_;
};

}  // namespace acbm::me
