#include "me/mv_field.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "me/cost.hpp"

namespace acbm::me {

MvField::MvField(int mbs_x, int mbs_y)
    : mbs_x_(mbs_x), mbs_y_(mbs_y),
      mvs_(static_cast<std::size_t>(mbs_x) * static_cast<std::size_t>(mbs_y)) {
  assert(mbs_x >= 0 && mbs_y >= 0);
}

MvField MvField::for_picture(int pic_w, int pic_h, int block) {
  assert(block > 0);
  return MvField((pic_w + block - 1) / block, (pic_h + block - 1) / block);
}

void MvField::reset_for_picture(int pic_w, int pic_h, int block) {
  assert(block > 0);
  const int mbs_x = (pic_w + block - 1) / block;
  const int mbs_y = (pic_h + block - 1) / block;
  mbs_x_ = mbs_x;
  mbs_y_ = mbs_y;
  const std::size_t count =
      static_cast<std::size_t>(mbs_x) * static_cast<std::size_t>(mbs_y);
  // assign() reuses the existing buffer when the size fits its capacity.
  mvs_.assign(count, Mv{});
}

Mv MvField::at(int bx, int by) const {
  assert(valid(bx, by));
  return mvs_[static_cast<std::size_t>(by) * mbs_x_ + bx];
}

void MvField::set(int bx, int by, Mv mv) {
  assert(valid(bx, by));
  mvs_[static_cast<std::size_t>(by) * mbs_x_ + bx] = mv;
}

Mv MvField::at_or(int bx, int by, Mv fallback) const {
  return valid(bx, by) ? at(bx, by) : fallback;
}

Mv MvField::median_predictor(int bx, int by) const {
  return median_predictor(bx, by, 0);
}

Mv MvField::median_predictor(int bx, int by, int first_row) const {
  // H.263 §6.1.1: candidates are left, above, above-right. Outside-picture
  // (or, for slices, outside-slice) candidates are zero, except that in the
  // first row the left candidate is used directly.
  const Mv left = at_or(bx - 1, by);
  if (by == first_row) {
    return left;
  }
  const Mv above = at_or(bx, by - 1);
  const Mv above_right = at_or(bx + 1, by - 1);
  auto median3 = [](int a, int b, int c) {
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
  };
  return {median3(left.x, above.x, above_right.x),
          median3(left.y, above.y, above_right.y)};
}

double MvField::smoothness_l1() const {
  std::uint64_t total = 0;
  std::uint64_t pairs = 0;
  for (int by = 0; by < mbs_y_; ++by) {
    for (int bx = 0; bx < mbs_x_; ++bx) {
      const Mv v = at(bx, by);
      if (bx + 1 < mbs_x_) {
        const Mv r = at(bx + 1, by);
        total += static_cast<std::uint64_t>(std::abs(v.x - r.x) +
                                            std::abs(v.y - r.y));
        ++pairs;
      }
      if (by + 1 < mbs_y_) {
        const Mv d = at(bx, by + 1);
        total += static_cast<std::uint64_t>(std::abs(v.x - d.x) +
                                            std::abs(v.y - d.y));
        ++pairs;
      }
    }
  }
  return pairs > 0 ? static_cast<double>(total) / static_cast<double>(pairs)
                   : 0.0;
}

std::uint64_t MvField::total_rate_bits() const {
  std::uint64_t bits = 0;
  for (int by = 0; by < mbs_y_; ++by) {
    for (int bx = 0; bx < mbs_x_; ++bx) {
      bits += mv_rate_bits(at(bx, by), median_predictor(bx, by));
    }
  }
  return bits;
}

}  // namespace acbm::me
