#pragma once
// Per-frame motion-vector field with the spatial/temporal accessors the PBM
// predictor logic (paper Fig. 2) and the codec's differential MV coding need.

#include <cstdint>
#include <vector>

#include "me/types.hpp"

namespace acbm::me {

class MvField {
 public:
  MvField() = default;

  /// Field of `mbs_x` × `mbs_y` macroblock vectors, all zero-initialised.
  MvField(int mbs_x, int mbs_y);

  /// Builds the field sized for a picture of pic_w×pic_h with 16×16 blocks.
  [[nodiscard]] static MvField for_picture(int pic_w, int pic_h,
                                           int block = kBlockSize);

  /// Re-zeroes the field for a picture of pic_w×pic_h IN PLACE — equivalent
  /// to assigning for_picture(pic_w, pic_h) but reusing the existing vector
  /// storage when the geometry is unchanged. The per-frame reset path of
  /// the encoder pipeline, which at HD sizes would otherwise free and
  /// reallocate two fields per frame.
  void reset_for_picture(int pic_w, int pic_h, int block = kBlockSize);

  [[nodiscard]] int mbs_x() const { return mbs_x_; }
  [[nodiscard]] int mbs_y() const { return mbs_y_; }
  [[nodiscard]] bool empty() const { return mvs_.empty(); }

  [[nodiscard]] Mv at(int bx, int by) const;
  void set(int bx, int by, Mv mv);

  /// True when (bx, by) lies inside the field.
  [[nodiscard]] bool valid(int bx, int by) const {
    return bx >= 0 && bx < mbs_x_ && by >= 0 && by < mbs_y_;
  }

  /// Vector at (bx, by), or `fallback` when outside the field. The paper's
  /// predictor diagrams treat off-picture neighbours as unavailable; callers
  /// pass {0,0} to match H.263's edge convention.
  [[nodiscard]] Mv at_or(int bx, int by, Mv fallback = {}) const;

  /// H.263 median predictor for the block at (bx, by): componentwise median
  /// of left, above and above-right neighbours (with the standard edge
  /// substitutions). This is the `pred` used for differential MV coding.
  [[nodiscard]] Mv median_predictor(int bx, int by) const;

  /// Slice-local variant: rows above `first_row` are treated as outside the
  /// picture, so a slice starting at `first_row` predicts exactly like a
  /// frame starting there — the seam that lets the codec entropy-code and
  /// decode slices independently. `first_row == 0` is the whole-frame
  /// predictor above, bit for bit.
  [[nodiscard]] Mv median_predictor(int bx, int by, int first_row) const;

  /// Field smoothness: mean L1 difference between horizontally and
  /// vertically adjacent vectors, in half-pel units. PBM fields measure
  /// smoother (smaller) than FSBM fields — §2.3's "incoherent field" claim,
  /// quantified.
  [[nodiscard]] double smoothness_l1() const;

  /// Total differential rate of the field in bits (sum of exp-Golomb MVD
  /// lengths against the median predictor, raster order). The R term of the
  /// paper's cost function, aggregated.
  [[nodiscard]] std::uint64_t total_rate_bits() const;

 private:
  int mbs_x_ = 0;
  int mbs_y_ = 0;
  std::vector<Mv> mvs_;
};

}  // namespace acbm::me
