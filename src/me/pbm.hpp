#pragma once
// PBM — predictive block matching (paper §2.2, after Chimienti et al. [9]).
//
// Three steps: (1) evaluate the spatio-temporal candidate predictors,
// (2) keep the one with lowest SAD, (3) refine locally — an iterative ±1
// integer-pel descent followed by the 8-point half-pel refinement. Total
// cost is tens of SADs per block, and the resulting field is smooth because
// every vector starts from its neighbours' motion. The known failure mode —
// getting trapped in a local minimum on textured or erratic content — is
// exactly what ACBM's criticality test detects.

#include "me/estimator.hpp"

namespace acbm::me {

class Pbm final : public MotionEstimator {
 public:
  /// `max_descent_iterations` bounds step (3)'s integer descent; the default
  /// keeps worst-case complexity bounded (Chimienti's "complexity-bounded"
  /// property) at ~6 + 8·8 + 8 ≈ 80 SADs.
  explicit Pbm(int max_descent_iterations = 8)
      : max_descent_iterations_(max_descent_iterations) {}

  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "PBM"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<Pbm>(*this);
  }

 private:
  int max_descent_iterations_;
};

}  // namespace acbm::me
