#pragma once
// Pixel-decimation SAD — the paper's second family of fast block matching
// (introduction refs [6–8]): reduce the number of pixels entering each match
// instead of the number of candidates.

#include <cstdint>

#include "me/estimator.hpp"
#include "video/plane.hpp"

namespace acbm::me {

enum class DecimationPattern {
  kNone,           ///< all bw×bh samples
  kQuincunx4to1,   ///< checkerboard-of-checkerboards: 1 of 4 samples
  kRowSkip2to1,    ///< every other row (Chan & Siu style)
};

/// Number of samples the pattern keeps out of a bw×bh block.
[[nodiscard]] int decimated_sample_count(DecimationPattern pattern, int bw,
                                         int bh);

/// SAD over the pattern's subset of samples. Values are comparable between
/// candidates under the same pattern, not across patterns.
[[nodiscard]] std::uint32_t sad_block_decimated(
    const video::Plane& cur, int cx, int cy, const video::Plane& ref, int rx,
    int ry, int bw, int bh, DecimationPattern pattern);

/// Full-window integer search using decimated SAD for ranking, then exact
/// SAD at the winner and standard half-pel refinement. The position count
/// still reflects candidate evaluations (decimation reduces per-position
/// work, not the number of positions — matching how refs [6–8] report cost).
[[nodiscard]] EstimateResult estimate_decimated_full_search(
    const BlockContext& ctx, DecimationPattern pattern);

/// Adaptive pixel decimation in the spirit of Chan & Siu (paper ref [7]):
/// per block, the texture statistic Intra_SAD selects the sampling density —
/// flat blocks match reliably from a quarter of the samples, textured
/// blocks get the full kernel. Thresholds are in Intra_SAD units for a
/// 16×16 block and scale with block area for other sizes.
class AdaptiveDecimationSearch final : public MotionEstimator {
 public:
  struct Thresholds {
    std::uint32_t quarter_below = 1500;  ///< Intra_SAD < this → 4:1 sampling
    std::uint32_t half_below = 4000;     ///< ... < this → 2:1, else full
  };

  AdaptiveDecimationSearch() = default;
  explicit AdaptiveDecimationSearch(Thresholds thresholds)
      : thresholds_(thresholds) {}

  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "FSBM-adec"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<AdaptiveDecimationSearch>(*this);
  }

  /// Pattern the thresholds select for a given texture level (exposed for
  /// tests and the ablation bench).
  [[nodiscard]] DecimationPattern pattern_for(std::uint32_t intra_sad,
                                              int bw, int bh) const;

 private:
  Thresholds thresholds_{};
};

/// Combined subsampling of pixels AND candidates after Yu, Zhou & Chen
/// (paper ref [6]): rank a 2:1 checkerboard of integer candidates with 4:1
/// decimated SAD, then re-rank the winner's full 8-neighbourhood with exact
/// SAD and half-pel refine. Roughly an 8× arithmetic reduction against
/// FSBM at near-full-search quality on natural content.
class SubsampledFullSearch final : public MotionEstimator {
 public:
  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "FSBM-sub"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<SubsampledFullSearch>(*this);
  }
};

}  // namespace acbm::me
