#pragma once
// Search-window handling.
//
// The paper uses p = 15 with border-extended reference pictures (so windows
// never shrink at picture edges and FSBM always evaluates (2p+1)² = 961
// integer positions — the 969-candidate count in §4 depends on this).
// The window is expressed in half-pel units and clamping is still provided
// for callers that want restricted vectors.

#include "me/types.hpp"
#include "video/plane.hpp"

namespace acbm::me {

/// Inclusive motion-vector bounds in half-pel units.
struct SearchWindow {
  int min_x = 0;
  int max_x = 0;
  int min_y = 0;
  int max_y = 0;

  [[nodiscard]] bool contains(Mv mv) const {
    return mv.x >= min_x && mv.x <= max_x && mv.y >= min_y && mv.y <= max_y;
  }

  /// Clamps a vector componentwise into the window.
  [[nodiscard]] Mv clamp(Mv mv) const;

  /// Number of integer-pel positions inside the window.
  [[nodiscard]] int fullpel_positions() const;
};

/// The paper's unrestricted window: ±p integer samples around (0,0),
/// independent of block position (reference borders absorb the overhang).
[[nodiscard]] SearchWindow unrestricted_window(int range_p);

/// A window additionally clamped so that the reference block stays within
/// the picture plus `slack` border samples. Used when emulating restricted
/// MV modes and by tests.
[[nodiscard]] SearchWindow restricted_window(int range_p, int block_x,
                                             int block_y, int block_w,
                                             int block_h, int pic_w, int pic_h,
                                             int slack = 0);

}  // namespace acbm::me
