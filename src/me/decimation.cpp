#include "me/decimation.hpp"

#include <cstdlib>

#include "me/halfpel.hpp"
#include "me/sad.hpp"
#include "me/search_support.hpp"
#include "simd/dispatch.hpp"

namespace acbm::me {

int decimated_sample_count(DecimationPattern pattern, int bw, int bh) {
  switch (pattern) {
    case DecimationPattern::kNone:
      return bw * bh;
    case DecimationPattern::kQuincunx4to1:
      return bw * bh / 4;
    case DecimationPattern::kRowSkip2to1:
      return bw * (bh / 2) + (bh % 2) * bw;
  }
  return bw * bh;
}

std::uint32_t sad_block_decimated(const video::Plane& cur, int cx, int cy,
                                  const video::Plane& ref, int rx, int ry,
                                  int bw, int bh, DecimationPattern pattern) {
  // The sampling lattices themselves (quincunx = Liu–Zaccarin pattern A,
  // row-skip = Chan & Siu) are specified in simd/sad_kernels.hpp; every
  // kernel variant reproduces them bit-exactly.
  const simd::SadKernels& k = simd::active_kernels();
  switch (pattern) {
    case DecimationPattern::kNone:
      return sad_block(cur, cx, cy, ref, rx, ry, bw, bh);
    case DecimationPattern::kQuincunx4to1:
      return k.sad_quincunx(cur.row(cy) + cx, cur.stride(), ref.row(ry) + rx,
                            ref.stride(), bw, bh);
    case DecimationPattern::kRowSkip2to1:
      return k.sad_rowskip(cur.row(cy) + cx, cur.stride(), ref.row(ry) + rx,
                           ref.stride(), bw, bh);
  }
  return 0;
}

DecimationPattern AdaptiveDecimationSearch::pattern_for(
    std::uint32_t intra_sad, int bw, int bh) const {
  // Thresholds are calibrated for 16×16; rescale by area for other sizes.
  const double area_scale = static_cast<double>(bw * bh) / (16.0 * 16.0);
  const double texture = static_cast<double>(intra_sad) / area_scale;
  if (texture < thresholds_.quarter_below) {
    return DecimationPattern::kQuincunx4to1;
  }
  if (texture < thresholds_.half_below) {
    return DecimationPattern::kRowSkip2to1;
  }
  return DecimationPattern::kNone;
}

EstimateResult AdaptiveDecimationSearch::estimate(const BlockContext& ctx) {
  const std::uint32_t texture =
      intra_sad(*ctx.cur, ctx.x, ctx.y, ctx.bw, ctx.bh);
  const DecimationPattern pattern = pattern_for(texture, ctx.bw, ctx.bh);
  EstimateResult result = estimate_decimated_full_search(ctx, pattern);
  result.positions += 1;  // the Intra_SAD pass that chose the pattern
  return result;
}

EstimateResult SubsampledFullSearch::estimate(const BlockContext& ctx) {
  const video::Plane& ref_int = ctx.ref->plane(0, 0);
  Mv best{};
  std::uint32_t best_dec = ~std::uint32_t{0};
  std::uint32_t positions = 0;
  const int min_x = ctx.window.min_x + (ctx.window.min_x & 1);
  const int min_y = ctx.window.min_y + (ctx.window.min_y & 1);
  // 2:1 checkerboard of integer candidates: skip positions where
  // (ix + iy) is odd (ix, iy in integer-pel units).
  for (int my = min_y; my <= ctx.window.max_y; my += 2) {
    for (int mx = min_x; mx <= ctx.window.max_x; mx += 2) {
      if ((((mx >> 1) + (my >> 1)) & 1) != 0) {
        continue;
      }
      const std::uint32_t dec = sad_block_decimated(
          *ctx.cur, ctx.x, ctx.y, ref_int, ctx.x + mx / 2, ctx.y + my / 2,
          ctx.bw, ctx.bh, DecimationPattern::kQuincunx4to1);
      ++positions;
      if (dec < best_dec) {
        best_dec = dec;
        best = {mx, my};
      }
    }
  }
  // Exact SAD over the winner's full integer neighbourhood (recovers the
  // skipped checkerboard positions), then half-pel refinement.
  SearchState state(ctx, /*track_visited=*/true);
  state.try_candidate(best);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) {
        continue;
      }
      state.try_candidate({best.x + dx * 2, best.y + dy * 2});
    }
  }
  refine_halfpel(state);
  EstimateResult result = state.result();
  result.positions += positions;
  return result;
}

EstimateResult estimate_decimated_full_search(const BlockContext& ctx,
                                              DecimationPattern pattern) {
  const video::Plane& ref_int = ctx.ref->plane(0, 0);
  Mv best{};
  std::uint32_t best_dec = ~std::uint32_t{0};
  std::uint32_t positions = 0;
  const int min_x = ctx.window.min_x + (ctx.window.min_x & 1);
  const int min_y = ctx.window.min_y + (ctx.window.min_y & 1);
  for (int my = min_y; my <= ctx.window.max_y; my += 2) {
    for (int mx = min_x; mx <= ctx.window.max_x; mx += 2) {
      const std::uint32_t dec = sad_block_decimated(
          *ctx.cur, ctx.x, ctx.y, ref_int, ctx.x + mx / 2, ctx.y + my / 2,
          ctx.bw, ctx.bh, pattern);
      ++positions;
      if (dec < best_dec) {
        best_dec = dec;
        best = {mx, my};
      }
    }
  }
  // Exact SAD at the decimated winner, then ordinary half-pel refinement.
  SearchState state(ctx);
  state.try_candidate(best);
  refine_halfpel(state);
  EstimateResult result = state.result();
  result.positions += positions;
  result.used_full_search = true;
  return result;
}

}  // namespace acbm::me
