#pragma once
// TSS — three-step search (Liu/Zeng/Liou [3] of the paper's references),
// generalised to arbitrary search ranges.
//
// Starting from a step of roughly half the range, each stage probes the
// centre's 8 neighbours at the current step, recentres on the minimum and
// halves the step until it reaches one integer sample, then half-pel
// refines. For p = 15 the steps are 8, 4, 2, 1 — the classic logarithmic
// schedule. One of the candidate-reduction baselines ACBM is positioned
// against in the paper's introduction.

#include "me/estimator.hpp"

namespace acbm::me {

class Tss final : public MotionEstimator {
 public:
  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "TSS"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<Tss>(*this);
  }
};

}  // namespace acbm::me
