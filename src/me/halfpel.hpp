#pragma once
// Half-pel refinement shared by every search algorithm.
//
// H.263 half-pel precision: after the integer-pel minimum is found, the 8
// surrounding half-pel positions are probed (paper §2.3: "the FSBM considers
// 8 additional half pixel candidates around the position pointed by the
// integer pixel motion vector").

#include "me/search_support.hpp"

namespace acbm::me {

/// Probes the 8 half-pel neighbours of the current best vector in `state`.
/// No-op when the context disables half-pel.
void refine_halfpel(SearchState& state);

/// Iterative integer-pel descent: repeatedly probes the 8 integer-grid
/// neighbours (step = `step_halfpel` half-pel units) of the current best and
/// recentres while it improves, up to `max_iterations`. Used by PBM's local
/// refinement and by the gradient phases of the fast searches.
void descend(SearchState& state, int step_halfpel, int max_iterations);

}  // namespace acbm::me
