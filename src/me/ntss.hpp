#pragma once
// NTSS — new three-step search (Li, Zeng & Liou, 1994): the exact algorithm
// the paper cites as [3].
//
// NTSS fixes classic TSS's weakness on small motion by making the first
// step centre-biased: alongside the 8 step-s probes it also checks the 8
// unit neighbours of the origin, and adds two halfway-stop rules:
//   * minimum at the origin            → stop (stationary block);
//   * minimum on the unit ring        → probe that point's 3–5 unprobed
//                                        unit neighbours and stop;
//   * minimum on the step-s ring      → continue as in TSS.
// Half-pel refinement follows, as for every estimator in this library.

#include "me/estimator.hpp"

namespace acbm::me {

class Ntss final : public MotionEstimator {
 public:
  EstimateResult estimate(const BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "NTSS"; }

  [[nodiscard]] std::unique_ptr<MotionEstimator> clone() const override {
    return std::make_unique<Ntss>(*this);
  }
};

}  // namespace acbm::me
