#pragma once
// String-keyed factory for MotionEstimator implementations, keyed by
// parameterized specs.
//
// Before this existed, every bench, example and the CLI encoder duplicated
// an 11-way switch to turn an algorithm name into an estimator object — and
// every parameter ablation needed bespoke C++ on top, because factories were
// zero-argument. The registry centralises both: construction sites ask for a
// spec — a bare name ("ACBM", all defaults) or "NAME:key=val,key=val"
// ("ACBM:alpha=500,beta=8") — and get a fresh, validated instance. New
// algorithms become available everywhere, sweepable from strings, by
// registering one factory plus the descriptors of its knobs.
//
// The registry itself is layer-neutral (it only knows the MotionEstimator
// interface and the spec grammar in me/spec.hpp). The instance pre-populated
// with every algorithm in this library lives one layer up, in
// core::builtin_estimators(), because the paper's own contribution
// (core::Acbm) sits above the me:: search library.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "me/estimator.hpp"
#include "me/spec.hpp"

namespace acbm::me {

/// @brief Spec-keyed factory of MotionEstimator instances.
///
/// Value-semantic and layer-neutral; the pre-populated instance lives in
/// core::builtin_estimators(). Not thread-safe for concurrent add(), but
/// freely shareable for concurrent create() once populated.
class EstimatorRegistry {
 public:
  /// Constructor of a fresh estimator instance from validated parameters.
  /// The ParamSet carries every declared knob (explicit or default); the
  /// factory reads them with the typed getters and never sees raw strings.
  using Factory =
      std::function<std::unique_ptr<MotionEstimator>(const ParamSet&)>;

  /// @brief Registers `factory` under `name` with its parameter descriptors.
  /// @param name non-empty key, conventionally the estimator's name().
  ///        Must not contain the grammar's reserved ':' separator.
  /// @param params descriptors of every knob the factory reads; empty for
  ///        knob-less estimators (any key in a spec then fails validation)
  /// @param factory callable producing a fresh instance per call
  /// @throws std::invalid_argument if the name is empty, reserved-character
  ///         tainted, or already registered (duplicates are always a bug)
  void add(std::string name, std::vector<ParamDesc> params, Factory factory);

  /// Back-compat convenience for knob-less estimators: wraps a zero-argument
  /// callable and declares no parameters.
  void add(std::string name,
           std::function<std::unique_ptr<MotionEstimator>()> factory);

  /// @return true when `name` (a bare estimator name, not a full spec) has
  ///         a registered factory.
  [[nodiscard]] bool contains(std::string_view name) const;

  /// @brief Creates a fresh estimator from a spec.
  /// @param spec "NAME" or "NAME:key=val,..." (see me/spec.hpp; bare names
  ///        mean all-default parameters, so pre-spec call sites keep
  ///        working unchanged)
  /// @return a new instance from the matching factory
  /// @throws util::SpecError for malformed specs, unknown names (message
  ///         lists every registered name), unknown keys (message lists
  ///         every valid key for that estimator with defaults and ranges),
  ///         and out-of-range values — CLI users see their options without
  ///         a separate help path
  [[nodiscard]] std::unique_ptr<MotionEstimator> create(
      std::string_view spec) const;

  /// Pre-parsed overload for programmatic construction (e.g. the analysis
  /// layer building a spec from an AcbmParams struct).
  [[nodiscard]] std::unique_ptr<MotionEstimator> create(
      const EstimatorSpec& spec) const;

  /// @brief Validates `spec` and returns its canonical form — every
  /// declared key at its effective value, declaration order, e.g.
  /// "ACBM:alpha=500" → "ACBM:alpha=500,beta=8,gamma=0.25" — without
  /// constructing the estimator. Stable across spellings of one
  /// configuration, parseable back to an identical estimator: what benches
  /// stamp into artifacts for cross-run joinability.
  /// @throws util::SpecError exactly as create() would
  [[nodiscard]] std::string canonical_spec(std::string_view spec) const;

  /// @brief Descriptors declared for `name` (a bare estimator name).
  /// @throws util::SpecError for unknown names
  [[nodiscard]] const std::vector<ParamDesc>& params(
      std::string_view name) const;

  /// @return registered names in registration order (the display order of
  ///         benches and usage strings).
  [[nodiscard]] std::vector<std::string> names() const;

  /// @return the full spec grammar plus every estimator's key list — the
  ///         text CLI frontends print when rejecting a spec.
  [[nodiscard]] std::string spec_usage() const;

  /// @return number of registered factories.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    std::vector<ParamDesc> params;
    Factory factory;
  };
  [[nodiscard]] const Entry& entry_for(std::string_view name) const;

  // Linear storage: registration order is meaningful (it is the display
  // order of benches and usage strings) and the set is small.
  std::vector<Entry> entries_;
};

}  // namespace acbm::me
