#pragma once
// String-keyed factory for MotionEstimator implementations.
//
// Before this existed, every bench, example and the CLI encoder duplicated
// an 11-way switch to turn an algorithm name into an estimator object. The
// registry centralises that mapping: construction sites ask for "ACBM" /
// "FSBM" / ... by name and get a fresh instance, and new algorithms become
// available everywhere by registering one factory.
//
// The registry itself is layer-neutral (it only knows the MotionEstimator
// interface). The instance pre-populated with every algorithm in this
// library lives one layer up, in core::builtin_estimators(), because the
// paper's own contribution (core::Acbm) sits above the me:: search library.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "me/estimator.hpp"

namespace acbm::me {

/// @brief String-keyed factory of MotionEstimator instances.
///
/// Value-semantic and layer-neutral; the pre-populated instance lives in
/// core::builtin_estimators(). Not thread-safe for concurrent add(), but
/// freely shareable for concurrent create() once populated.
class EstimatorRegistry {
 public:
  /// Zero-argument constructor of a fresh estimator instance.
  using Factory = std::function<std::unique_ptr<MotionEstimator>()>;

  /// @brief Registers `factory` under `name`.
  /// @param name non-empty key, conventionally the estimator's name()
  /// @param factory callable producing a fresh instance per call
  /// @throws std::invalid_argument if the name is empty or already
  ///         registered (duplicates are always a bug)
  void add(std::string name, Factory factory);

  /// @return true when `name` has a registered factory.
  [[nodiscard]] bool contains(std::string_view name) const;

  /// @brief Creates a fresh estimator.
  /// @param name a registered key (case-sensitive)
  /// @return a new instance from the matching factory
  /// @throws std::invalid_argument for unknown names; the message lists
  ///         every registered name so CLI users see their options without
  ///         a separate help path
  [[nodiscard]] std::unique_ptr<MotionEstimator> create(
      std::string_view name) const;

  /// @return registered names in registration order (the display order of
  ///         benches and usage strings).
  [[nodiscard]] std::vector<std::string> names() const;

  /// @return number of registered factories.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Factory factory;
  };
  // Linear storage: registration order is meaningful (it is the display
  // order of benches and usage strings) and the set is small.
  std::vector<Entry> entries_;
};

}  // namespace acbm::me
