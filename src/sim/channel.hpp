#pragma once
// Deterministic lossy-channel simulator for ACV1/ACV2 bitstreams.
//
// A channel is configured through the project's spec grammar,
// "MODEL:key=val,...", and damages a stream at *slice granularity*: it
// walks each ACV2 frame's slice directory via the payload-length hops (the
// same mechanism the decoder's resynchronisation uses) and treats every
// slice payload as one transport unit. The loss model decides per unit
// whether it arrives; a lost unit is then damaged according to the `hit`
// mode:
//
//   hit=drop    the payload bytes are removed and the directory's length
//               field is rewritten to 0 — models a transport that knows the
//               packet is gone (RTP sequence gap). An empty payload can
//               never decode, so a dropped slice is always concealed.
//   hit=flip    `flips` bit flips at seeded positions inside the payload —
//               models residual bit errors that survive the transport CRC.
//   hit=header  a bit flip inside the slice's 9-byte directory entry — the
//               adversarial mode: it attacks the resynchronisation metadata
//               itself rather than the entropy-coded payload.
//
// Models:
//   iid:loss=0.05,seed=7[,hit=drop,flips=3]     independent per-unit loss
//   gilbert:loss=0.05,burst=8,seed=7[,...]      Gilbert-Elliott two-state
//       bursty loss; `loss` is the stationary loss fraction and `burst` the
//       mean burst length in units (p(good->bad) = loss/(burst*(1-loss)),
//       p(bad->good) = 1/burst)
//   trunc:at=0.5                                keep the first at*size bytes
//
// ACV1 streams have no slice directory, so the body after the 12-byte
// sequence header is split into fixed 64-byte cells as surrogate transport
// units (drop zero-fills a cell so stream length is preserved). Everything
// is deterministic: same spec + same input => byte-identical output, across
// platforms (util::Rng is xoshiro256++, not std::mt19937).
//
// loss=0 (or trunc:at=1) is the identity: the output is byte-identical to
// the input and the report counts zero damaged units.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace acbm::sim {

/// What happens to a transport unit the loss model marks as lost.
enum class ChannelHit { kDrop, kFlip, kHeader };

/// Which stochastic process decides per-unit loss.
enum class ChannelModel { kIid, kGilbert, kTrunc };

struct ChannelConfig {
  ChannelModel model = ChannelModel::kIid;
  double loss = 0.0;           ///< stationary loss fraction, [0, 0.99]
  int burst = 8;               ///< gilbert mean burst length (units), >= 1
  std::uint64_t seed = 1;      ///< PRNG seed; same seed => same realization
  ChannelHit hit = ChannelHit::kDrop;
  int flips = 3;               ///< bit flips per hit unit (flip/header), >= 1
  double at = 0.5;             ///< trunc keep fraction, [0, 1]
};

/// @brief Parses "MODEL:key=val,..." (models iid, gilbert, trunc).
/// @throws util::SpecError on unknown models/keys, malformed values and
///         out-of-range values; the message embeds channel_spec_usage().
[[nodiscard]] ChannelConfig channel_config_from_spec(std::string_view spec);

/// Canonical spec of `config`: the model name plus every key the model
/// uses, in declaration order. Round-trips through
/// channel_config_from_spec.
[[nodiscard]] std::string to_spec(const ChannelConfig& config);

/// The grammar, one line per model with keys, defaults and ranges.
[[nodiscard]] std::string channel_spec_usage();

/// Damage accounting of one apply() run.
struct ChannelReport {
  std::uint64_t frames = 0;          ///< frames walked
  std::uint64_t units = 0;           ///< transport units seen
  std::uint64_t dropped = 0;         ///< units removed (hit=drop)
  std::uint64_t flipped = 0;         ///< payloads bit-flipped (hit=flip)
  std::uint64_t directory_hits = 0;  ///< directory entries hit (hit=header)
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class Channel {
 public:
  explicit Channel(const ChannelConfig& config);
  /// Convenience: parse + construct. @throws util::SpecError
  explicit Channel(std::string_view spec);

  [[nodiscard]] const ChannelConfig& config() const { return config_; }
  /// The canonical spec (what acbm_dec echoes into the DecodeReport).
  [[nodiscard]] std::string spec() const;

  /// Runs `data` through the channel and returns the damaged stream.
  /// Stateless across calls: the PRNG restarts from the seed, so the same
  /// input always yields the same output. An input too short or without an
  /// ACV1/ACV2 magic passes through unchanged (trunc still truncates — it
  /// has no structural needs). Length fields the walk cannot trust (a
  /// malformed source) end the walk; the unparsed tail is copied verbatim.
  [[nodiscard]] std::vector<std::uint8_t> apply(
      std::span<const std::uint8_t> data,
      ChannelReport* report = nullptr) const;

  /// The per-unit loss sequence the model would produce for `units`
  /// consecutive transport units — exactly the decisions apply() consumes,
  /// in stream order (damage-position draws come from an independent
  /// stream, so they do not perturb this sequence). Exposed so tests can
  /// assert seeded determinism and the Gilbert burst-length distribution
  /// without parsing bitstreams. Empty for the trunc model.
  [[nodiscard]] std::vector<bool> realize(std::size_t units) const;

 private:
  ChannelConfig config_;
};

}  // namespace acbm::sim
