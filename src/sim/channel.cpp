#include "sim/channel.hpp"

#include <algorithm>
#include <cstddef>

#include "util/kv.hpp"
#include "util/rng.hpp"

namespace acbm::sim {

namespace {

// Wire constants (mirrored from the format description in encoder.hpp; the
// simulator deliberately shares no code with either decoder so it can be
// aimed at them both).
constexpr std::uint32_t kMagicV1 = 0x41435631;  // "ACV1"
constexpr std::uint32_t kMagicV2 = 0x41435632;  // "ACV2"
constexpr std::uint32_t kSliceSync = 0x534C;    // "SL"
constexpr std::size_t kSequenceHeaderBytes = 12;
constexpr std::size_t kSliceHeaderBytes = 9;
/// Surrogate transport-unit size for ACV1 bodies (no slice directory).
constexpr std::size_t kV1CellBytes = 64;
/// Stream-splitting constant: damage-position draws come from an
/// independent PRNG so they never perturb the per-unit loss sequence
/// realize() exposes.
constexpr std::uint64_t kDamageStreamSalt = 0x6368616E6E656C21ull;

std::uint32_t read_u32(std::span<const std::uint8_t> data, std::size_t pos) {
  return (static_cast<std::uint32_t>(data[pos]) << 24) |
         (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
         (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
         static_cast<std::uint32_t>(data[pos + 3]);
}

std::uint32_t read_u16(std::span<const std::uint8_t> data, std::size_t pos) {
  return (static_cast<std::uint32_t>(data[pos]) << 8) |
         static_cast<std::uint32_t>(data[pos + 1]);
}

const char* model_name(ChannelModel model) {
  switch (model) {
    case ChannelModel::kIid:
      return "iid";
    case ChannelModel::kGilbert:
      return "gilbert";
    case ChannelModel::kTrunc:
      return "trunc";
  }
  return "?";
}

const char* hit_name(ChannelHit hit) {
  switch (hit) {
    case ChannelHit::kDrop:
      return "drop";
    case ChannelHit::kFlip:
      return "flip";
    case ChannelHit::kHeader:
      return "header";
  }
  return "?";
}

/// The per-unit loss decision process; one PRNG draw per unit in both
/// models, so the sequence is a pure function of (model, loss, burst, seed).
class LossProcess {
 public:
  explicit LossProcess(const ChannelConfig& config)
      : model_(config.model), loss_(config.loss), rng_(config.seed) {
    if (model_ == ChannelModel::kGilbert) {
      // Stationary loss fraction `loss`, mean burst length `burst`.
      p_bad_to_good_ = 1.0 / static_cast<double>(config.burst);
      p_good_to_bad_ =
          loss_ / (static_cast<double>(config.burst) * (1.0 - loss_));
    }
  }

  bool next() {
    if (model_ == ChannelModel::kIid) {
      return rng_.next_double() < loss_;
    }
    const bool lost = bad_;
    const double draw = rng_.next_double();
    bad_ = bad_ ? !(draw < p_bad_to_good_) : draw < p_good_to_bad_;
    return lost;
  }

 private:
  ChannelModel model_;
  double loss_;
  double p_good_to_bad_ = 0.0;
  double p_bad_to_good_ = 0.0;
  bool bad_ = false;  ///< gilbert state; starts in the good state
  util::Rng rng_;
};

void flip_bits(std::uint8_t* bytes, std::size_t size_bytes, int flips,
               util::Rng& damage_rng) {
  for (int i = 0; i < flips; ++i) {
    const std::uint32_t bit = damage_rng.next_below(
        static_cast<std::uint32_t>(size_bytes * 8));
    bytes[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
  }
}

}  // namespace

std::string channel_spec_usage() {
  return
      "channel spec grammar: MODEL:key=val[,key=val...] over the models\n"
      "  iid:loss=0,seed=1,hit=drop,flips=3\n"
      "      independent per-unit loss; loss (0..0.99), seed (>=0),\n"
      "      hit (drop|flip|header), flips per hit unit (1..64)\n"
      "  gilbert:loss=0,burst=8,seed=1,hit=drop,flips=3\n"
      "      Gilbert-Elliott bursty loss; loss = stationary loss fraction\n"
      "      (0..0.99), burst = mean burst length in units (1..1000000),\n"
      "      seed/hit/flips as for iid\n"
      "  trunc:at=0.5\n"
      "      keep the first at*size bytes (at in 0..1; 1 = identity)\n";
}

ChannelConfig channel_config_from_spec(std::string_view spec) {
  // "MODEL" or "MODEL:key=val,...". The model name is mandatory — a bare
  // key list has no meaning without knowing which process interprets it.
  std::string_view name = spec;
  std::string_view kv;
  if (const std::size_t colon = spec.find(':');
      colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    kv = spec.substr(colon + 1);
  }
  while (!name.empty() && name.front() == ' ') {
    name.remove_prefix(1);
  }
  while (!name.empty() && name.back() == ' ') {
    name.remove_suffix(1);
  }

  ChannelConfig config;
  if (name == "iid") {
    config.model = ChannelModel::kIid;
  } else if (name == "gilbert") {
    config.model = ChannelModel::kGilbert;
  } else if (name == "trunc") {
    config.model = ChannelModel::kTrunc;
  } else {
    throw util::SpecError("channel: unknown model \"" + std::string(name) +
                          "\"; " + channel_spec_usage());
  }

  for (const util::KeyValue& pair : util::parse_kv_list(kv)) {
    const std::string what = "channel key " + pair.first;
    const bool lossy = config.model != ChannelModel::kTrunc;
    if (lossy && pair.first == "loss") {
      config.loss = util::parse_double_strict(pair.second, what);
      if (!(config.loss >= 0.0 && config.loss <= 0.99)) {
        throw util::SpecError("channel: loss=" + pair.second +
                              " out of range [0, 0.99]");
      }
    } else if (config.model == ChannelModel::kGilbert &&
               pair.first == "burst") {
      const std::int64_t value = util::parse_int_strict(pair.second, what);
      if (value < 1 || value > 1000000) {
        throw util::SpecError("channel: burst=" + pair.second +
                              " out of range [1, 1000000]");
      }
      config.burst = static_cast<int>(value);
    } else if (lossy && pair.first == "seed") {
      const std::int64_t value = util::parse_int_strict(pair.second, what);
      if (value < 0) {
        throw util::SpecError("channel: seed must be >= 0");
      }
      config.seed = static_cast<std::uint64_t>(value);
    } else if (lossy && pair.first == "hit") {
      if (pair.second == "drop") {
        config.hit = ChannelHit::kDrop;
      } else if (pair.second == "flip") {
        config.hit = ChannelHit::kFlip;
      } else if (pair.second == "header") {
        config.hit = ChannelHit::kHeader;
      } else {
        throw util::SpecError("channel: hit=" + pair.second +
                              " is not one of {drop, flip, header}");
      }
    } else if (lossy && pair.first == "flips") {
      const std::int64_t value = util::parse_int_strict(pair.second, what);
      if (value < 1 || value > 64) {
        throw util::SpecError("channel: flips=" + pair.second +
                              " out of range [1, 64]");
      }
      config.flips = static_cast<int>(value);
    } else if (config.model == ChannelModel::kTrunc && pair.first == "at") {
      config.at = util::parse_double_strict(pair.second, what);
      if (!(config.at >= 0.0 && config.at <= 1.0)) {
        throw util::SpecError("channel: at=" + pair.second +
                              " out of range [0, 1]");
      }
    } else {
      throw util::SpecError("channel: unknown key \"" + pair.first +
                            "\" for model " + std::string(name) + "; " +
                            channel_spec_usage());
    }
  }
  return config;
}

std::string to_spec(const ChannelConfig& config) {
  std::string out = model_name(config.model);
  out += ':';
  if (config.model == ChannelModel::kTrunc) {
    out += "at=" + util::format_double(config.at);
    return out;
  }
  out += "loss=" + util::format_double(config.loss);
  if (config.model == ChannelModel::kGilbert) {
    out += ",burst=" + std::to_string(config.burst);
  }
  out += ",seed=" + std::to_string(config.seed);
  out += ",hit=";
  out += hit_name(config.hit);
  out += ",flips=" + std::to_string(config.flips);
  return out;
}

Channel::Channel(const ChannelConfig& config) : config_(config) {}

Channel::Channel(std::string_view spec)
    : config_(channel_config_from_spec(spec)) {}

std::string Channel::spec() const { return to_spec(config_); }

std::vector<bool> Channel::realize(std::size_t units) const {
  std::vector<bool> lost;
  if (config_.model == ChannelModel::kTrunc) {
    return lost;
  }
  lost.reserve(units);
  LossProcess process(config_);
  for (std::size_t i = 0; i < units; ++i) {
    lost.push_back(process.next());
  }
  return lost;
}

std::vector<std::uint8_t> Channel::apply(std::span<const std::uint8_t> data,
                                         ChannelReport* report) const {
  ChannelReport local;
  local.bytes_in = data.size();

  if (config_.model == ChannelModel::kTrunc) {
    const std::size_t keep = std::min(
        data.size(), static_cast<std::size_t>(
                         config_.at * static_cast<double>(data.size())));
    std::vector<std::uint8_t> out(data.begin(),
                                  data.begin() + static_cast<std::ptrdiff_t>(
                                                     keep));
    local.bytes_out = out.size();
    if (report != nullptr) {
      *report = local;
    }
    return out;
  }

  std::vector<std::uint8_t> out;
  const auto pass_through = [&] {
    out.assign(data.begin(), data.end());
    local.bytes_out = out.size();
    if (report != nullptr) {
      *report = local;
    }
    return out;
  };
  if (data.size() < kSequenceHeaderBytes) {
    return pass_through();
  }
  const std::uint32_t magic = read_u32(data, 0);
  if (magic != kMagicV1 && magic != kMagicV2) {
    return pass_through();
  }

  out.reserve(data.size());
  out.insert(out.end(), data.begin(),
             data.begin() + kSequenceHeaderBytes);
  std::size_t pos = kSequenceHeaderBytes;
  LossProcess process(config_);
  util::Rng damage_rng(config_.seed ^ kDamageStreamSalt);

  if (magic == kMagicV1) {
    // No directory to hop: fixed-size byte cells stand in for transport
    // units. Drops zero-fill so the stream keeps its length (mirroring
    // drop-with-known-extent semantics as closely as a directoryless
    // format allows); flip and header both degrade to bit flips.
    while (pos < data.size()) {
      const std::size_t cell = std::min(kV1CellBytes, data.size() - pos);
      const std::size_t start = out.size();
      out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(pos),
                 data.begin() + static_cast<std::ptrdiff_t>(pos + cell));
      ++local.units;
      if (process.next()) {
        if (config_.hit == ChannelHit::kDrop) {
          std::fill(out.begin() + static_cast<std::ptrdiff_t>(start),
                    out.end(), std::uint8_t{0});
          ++local.dropped;
        } else {
          flip_bits(out.data() + start, cell, config_.flips, damage_rng);
          ++local.flipped;
        }
      }
      pos += cell;
    }
    local.bytes_out = out.size();
    if (report != nullptr) {
      *report = local;
    }
    return out;
  }

  // ACV2: hop frame header -> slice count -> per-slice (header, payload).
  // The walk trusts the source stream's structure (the channel is the
  // *cause* of damage, not a consumer of it); anything that does not parse
  // ends the walk and the tail is copied verbatim.
  constexpr std::size_t kFrameHeaderBytes = 3;  // sync16 + type/qp/deblock
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderBytes + 1) {
      break;  // tail copied below
    }
    if (read_u16(data, pos) != 0x7E5A) {  // frame sync
      break;
    }
    const int slice_count = data[pos + kFrameHeaderBytes];
    if (slice_count < 1) {
      break;
    }
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(pos),
               data.begin() +
                   static_cast<std::ptrdiff_t>(pos + kFrameHeaderBytes + 1));
    std::size_t p = pos + kFrameHeaderBytes + 1;
    ++local.frames;
    bool walk_ok = true;
    for (int s = 0; s < slice_count && walk_ok; ++s) {
      if (data.size() - p < kSliceHeaderBytes) {
        walk_ok = false;
        break;
      }
      const std::uint32_t sync = read_u16(data, p);
      const int index = data[p + 2];
      const std::size_t payload =
          read_u32(data, p + 5);
      if (sync != kSliceSync || index != s ||
          payload > data.size() - (p + kSliceHeaderBytes)) {
        walk_ok = false;
        break;
      }
      ++local.units;
      const bool lost = process.next();
      const std::size_t header_start = out.size();
      out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(p),
                 data.begin() +
                     static_cast<std::ptrdiff_t>(p + kSliceHeaderBytes));
      if (lost && config_.hit == ChannelHit::kDrop) {
        // Remove the payload and rewrite the directory length to 0: the
        // transport knows the packet is gone. Empty payloads never decode,
        // so the slice is deterministically concealed downstream.
        out[header_start + 5] = 0;
        out[header_start + 6] = 0;
        out[header_start + 7] = 0;
        out[header_start + 8] = 0;
        ++local.dropped;
      } else if (lost && config_.hit == ChannelHit::kHeader) {
        flip_bits(out.data() + header_start, kSliceHeaderBytes,
                  config_.flips, damage_rng);
        out.insert(out.end(),
                   data.begin() +
                       static_cast<std::ptrdiff_t>(p + kSliceHeaderBytes),
                   data.begin() + static_cast<std::ptrdiff_t>(
                                      p + kSliceHeaderBytes + payload));
        ++local.directory_hits;
      } else {
        const std::size_t payload_start = out.size();
        out.insert(out.end(),
                   data.begin() +
                       static_cast<std::ptrdiff_t>(p + kSliceHeaderBytes),
                   data.begin() + static_cast<std::ptrdiff_t>(
                                      p + kSliceHeaderBytes + payload));
        if (lost && payload > 0) {
          flip_bits(out.data() + payload_start, payload, config_.flips,
                    damage_rng);
          ++local.flipped;
        }
      }
      p += kSliceHeaderBytes + payload;
    }
    pos = p;
    if (!walk_ok) {
      break;
    }
  }
  out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(pos),
             data.end());
  local.bytes_out = out.size();
  if (report != nullptr) {
    *report = local;
  }
  return out;
}

}  // namespace acbm::sim
