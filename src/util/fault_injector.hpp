#pragma once
// Deterministic, seeded fault injection for the encoding service.
//
// A FaultInjector is armed by a kv spec with the same grammar discipline as
// sim::channel ("fault:site=encode_throw,p=0.01,seed=7") and then queried
// at named sites inside the pipeline. The firing decision is a PURE hash of
// (seed, site, lane, event) — there is no sequential RNG state — so the
// decision for (lane 3, frame 17) is the same no matter how the thread
// scheduler interleaves sessions, which is what lets the soak test predict
// exactly which frames of which sessions will fail for a given seed. Lanes
// are session ids; events are frame indices.
//
// Disarmed (p == 0 or no injector installed) the query is a null-pointer
// check on the hot path — zero overhead, byte-identical streams.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace acbm::util {

/// Where a fault is delivered. Each site models a distinct real-world
/// failure the service must survive.
enum class FaultSite {
  kAlloc,        ///< allocation failure: throws std::bad_alloc
  kEncodeThrow,  ///< encoder-stage bug: throws util::InjectedFault
  kTaskDelay,    ///< slow task: sleeps delay_ms (for deadline/overload tests)
};

/// Canonical spec name of `site` (alloc | encode_throw | task_delay_ms).
[[nodiscard]] const char* fault_site_name(FaultSite site);

struct FaultConfig {
  FaultSite site = FaultSite::kEncodeThrow;
  double p = 0.0;           ///< per-event firing probability [0, 1]
  std::uint64_t seed = 1;   ///< hash seed; same seed => same firing pattern
  int delay_ms = 5;         ///< sleep length for site=task_delay_ms
};

/// Human-readable grammar description, embedded in SpecError messages.
[[nodiscard]] std::string fault_spec_usage();

/// Parses "fault:site=...,p=...,seed=...,delay_ms=...". The "fault" prefix
/// is mandatory (mirrors the channel grammar's mandatory model name).
/// Throws util::SpecError on any unknown key or out-of-range value.
[[nodiscard]] FaultConfig fault_config_from_spec(std::string_view spec);

/// Canonical round-trip render of `config`.
[[nodiscard]] std::string to_spec(const FaultConfig& config);

/// The exception thrown by site=encode_throw — a stand-in for "a bug in one
/// estimator threw" that tests can distinguish from real failures.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultConfig& config) : config_(config) {}
  explicit FaultInjector(std::string_view spec)
      : config_(fault_config_from_spec(spec)) {}

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] std::string spec() const { return to_spec(config_); }

  /// False iff no event can ever fire (p == 0).
  [[nodiscard]] bool armed() const { return config_.p > 0.0; }

  /// Pure decision function: does the fault fire at (lane, event)? Same
  /// (config, lane, event) always answers the same, independent of call
  /// order or thread.
  [[nodiscard]] bool should_fire(std::uint64_t lane,
                                 std::uint64_t event) const;

  /// Delivers the configured fault at (lane, event) if it fires: throws
  /// std::bad_alloc (site=alloc), throws InjectedFault (site=encode_throw),
  /// or sleeps delay_ms (site=task_delay_ms). No-op when it does not fire.
  void inject(std::uint64_t lane, std::uint64_t event) const;

  /// Test helper: the first event in [from, from + count) that fires on
  /// `lane`, or -1 if none does.
  [[nodiscard]] std::int64_t first_fire(std::uint64_t lane,
                                        std::uint64_t from,
                                        std::uint64_t count) const;

 private:
  FaultConfig config_;
};

}  // namespace acbm::util
