#include "util/kv.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace acbm::util {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::vector<KeyValue> parse_kv_list(std::string_view text) {
  std::vector<KeyValue> pairs;
  if (trim(text).empty()) {
    return pairs;
  }
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view token = trim(text.substr(begin, end - begin));
    if (token.empty()) {
      throw SpecError("spec: empty key=value token in \"" +
                      std::string(text) + '"');
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw SpecError("spec: token \"" + std::string(token) +
                      "\" is not of the form key=value");
    }
    const std::string key{trim(token.substr(0, eq))};
    const std::string value{trim(token.substr(eq + 1))};
    if (key.empty()) {
      throw SpecError("spec: empty key in token \"" + std::string(token) +
                      '"');
    }
    for (const KeyValue& pair : pairs) {
      if (pair.first == key) {
        throw SpecError("spec: duplicate key \"" + key + '"');
      }
    }
    pairs.emplace_back(key, value);
    begin = end + 1;
    if (end == text.size()) {
      break;
    }
  }
  return pairs;
}

std::string format_kv_list(const std::vector<KeyValue>& pairs) {
  std::string out;
  for (const KeyValue& pair : pairs) {
    if (!out.empty()) {
      out += ',';
    }
    out += pair.first;
    out += '=';
    out += pair.second;
  }
  return out;
}

double parse_double_strict(std::string_view text, const std::string& what) {
  const std::string token{trim(text)};
  if (token.empty()) {
    throw SpecError("spec: empty value for " + what);
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size()) {
    throw SpecError("spec: \"" + token + "\" is not a number for " + what);
  }
  return value;
}

std::int64_t parse_int_strict(std::string_view text, const std::string& what) {
  const std::string token{trim(text)};
  if (token.empty()) {
    throw SpecError("spec: empty value for " + what);
  }
  errno = 0;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) {
    throw SpecError("spec: \"" + token + "\" is not an integer for " + what);
  }
  return value;
}

bool parse_bool_strict(std::string_view text, const std::string& what) {
  const std::string_view token = trim(text);
  if (token == "1" || token == "true" || token == "on") {
    return true;
  }
  if (token == "0" || token == "false" || token == "off") {
    return false;
  }
  throw SpecError("spec: \"" + std::string(token) + "\" is not a boolean for " +
                  what + " (use 0/1/true/false/on/off)");
}

std::string format_double(double value) {
  char buffer[64];
  // Integral values that fit print as plain integers ("500", not "5e+02"):
  // the spec grammar's common case is a human-authored whole number, and
  // the canonical form should look like what the human wrote.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  // Otherwise probe increasing precision until the representation
  // round-trips; %.17g always does, so the loop terminates.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) {
      break;
    }
  }
  return buffer;
}

}  // namespace acbm::util
