#pragma once
// Exponential-Golomb codes over BitWriter/BitReader.
//
// These universal prefix codes back the codec's motion-vector-difference and
// coefficient escape coding (DESIGN.md §4 documents the substitution for the
// TMN Huffman tables). ue(v) is the classic order-0 code:
//   v=0 -> 1, v=1 -> 010, v=2 -> 011, v=3 -> 00100, ...
// se(v) maps signed integers with the H.26x zig-zag convention
// (0, 1, -1, 2, -2, ...), which keeps small-magnitude values cheap — the
// property the paper's rate term R(mv) relies on.

#include <cassert>
#include <cstdint>

#include "util/bitstream.hpp"

namespace acbm::util {

/// Number of bits ue(v) occupies, without writing anything.
[[nodiscard]] constexpr int ue_bit_length(std::uint32_t value) {
  const std::uint64_t v = static_cast<std::uint64_t>(value) + 1;
  int msb = 0;
  for (std::uint64_t t = v; t > 1; t >>= 1) {
    ++msb;
  }
  return 2 * msb + 1;
}

/// Number of bits se(v) occupies.
[[nodiscard]] constexpr int se_bit_length(std::int32_t value) {
  const std::uint32_t mapped =
      value > 0 ? static_cast<std::uint32_t>(value) * 2 - 1
                : static_cast<std::uint32_t>(-static_cast<std::int64_t>(value)) * 2;
  return ue_bit_length(mapped);
}

/// Writes an unsigned exp-Golomb code.
inline void put_ue(BitWriter& bw, std::uint32_t value) {
  const std::uint64_t v = static_cast<std::uint64_t>(value) + 1;
  int msb = 0;
  for (std::uint64_t t = v; t > 1; t >>= 1) {
    ++msb;
  }
  bw.put_bits(0, msb);       // leading zeros
  bw.put_bits(v, msb + 1);   // value with its top bit acting as the stop bit
}

/// Writes a signed exp-Golomb code.
inline void put_se(BitWriter& bw, std::int32_t value) {
  const std::uint32_t mapped =
      value > 0 ? static_cast<std::uint32_t>(value) * 2 - 1
                : static_cast<std::uint32_t>(-static_cast<std::int64_t>(value)) * 2;
  put_ue(bw, mapped);
}

/// Reads an unsigned exp-Golomb code.
[[nodiscard]] inline std::uint32_t get_ue(BitReader& br) {
  int zeros = 0;
  while (!br.exhausted() && br.get_bits(1) == 0) {
    ++zeros;
    if (zeros > 32) {  // malformed stream guard
      return 0;
    }
  }
  if (br.exhausted()) {
    return 0;  // ran off the end looking for the stop bit
  }
  const std::uint64_t rest = br.get_bits(zeros);
  const std::uint64_t v = (std::uint64_t{1} << zeros) | rest;
  return static_cast<std::uint32_t>(v - 1);
}

/// Reads a signed exp-Golomb code.
[[nodiscard]] inline std::int32_t get_se(BitReader& br) {
  const std::uint32_t mapped = get_ue(br);
  if (mapped == 0) {
    return 0;
  }
  const std::uint32_t half = (mapped + 1) / 2;
  return (mapped & 1u) != 0 ? static_cast<std::int32_t>(half)
                            : -static_cast<std::int32_t>(half);
}

}  // namespace acbm::util
