#include "util/csv.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace acbm::util {

namespace {

bool needs_quotes(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& s) {
  if (!needs_quotes(s)) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      *out_ << ',';
    }
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::num(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        out << "  ";
      }
      // Right-align; headers and text cells still look fine right-aligned
      // and numeric columns line up the way the paper's tables do.
      out << std::string(widths[i] - row[i].size(), ' ') << row[i];
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i != 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string sanitize_filename(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '-' || c == '_' || c == '.';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace acbm::util
