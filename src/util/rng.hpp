#pragma once
// Deterministic pseudo-random number generation for the synthetic-sequence
// generators and the property-based tests.
//
// xoshiro256++ is used instead of std::mt19937 so that sequences are
// identical across standard-library implementations — the benches assert
// golden statistics on generated video and must reproduce bit-exactly.

#include <cstdint>

namespace acbm::util {

/// xoshiro256++ PRNG (Blackman & Vigna). Deterministically seeded via
/// splitmix64, so two Rng instances with the same seed always agree.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int32_t next_in_range(std::int32_t lo, std::int32_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Standard normal variate (Box–Muller; one value per call, cached pair).
  double next_gaussian();

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace acbm::util
