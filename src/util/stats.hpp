#pragma once
// Descriptive statistics used by the characterization harness (Fig. 4
// scatter summaries) and the complexity accounting (Table 1 averages).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace acbm::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) memory; suitable for per-macroblock counters over whole sequences.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (division by n). Zero for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-safe combine).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples and answers arbitrary quantile queries. Used where the
/// paper reports distributions (Fig. 4 scatter clouds) rather than moments.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  /// Linear-interpolated quantile, q in [0,1]. Sorts lazily.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals always match the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace acbm::util
