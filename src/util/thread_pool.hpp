#pragma once
// A small fixed-size worker pool for the encoder's parallel stages.
//
// Design constraints, in order:
//   1. Determinism support: every pool thread has a stable 0-based index
//      (worker_index()), so callers can give each worker private state — the
//      encoding pipeline hands each worker its own cloned MotionEstimator
//      and merges statistics afterwards.
//   2. FIFO dispatch: tasks start in submission order. The wavefront
//      scheduler in codec::EncoderPipeline relies on this to guarantee that
//      a macroblock row's predecessor row is always running or finished
//      before the row itself starts (no deadlock in the dependency waits).
//   3. No task futures or result plumbing — callers use wait_idle() as the
//      stage barrier and write results into pre-sized arrays.
//
// Tasks must not throw: an exception escaping a task would terminate the
// process (std::terminate via the worker thread). The pipeline's tasks are
// arithmetic only; anything throwing there is already a bug.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace acbm::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers. `threads` < 1 is clamped to 1.
  explicit ThreadPool(int threads);

  /// Drains the queue (runs every submitted task) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks start in FIFO order.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// 0-based index of the calling pool thread, or -1 when called from a
  /// thread that does not belong to any ThreadPool.
  [[nodiscard]] static int worker_index();

  /// Picks a worker count: `requested` if positive, the hardware
  /// concurrency (at least 1) for 0, and 1 (serial) for negative values.
  [[nodiscard]] static int resolve_thread_count(int requested);

 private:
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t in_flight_ = 0;  ///< queued + currently running tasks
  bool stopping_ = false;
};

/// Per-row completion counters for wavefront-ordered parallel loops.
///
/// A producer working through row R publishes its progress with
/// publish(R, n); a consumer of row R+1 blocks in wait_for(R, need) until
/// row R has advanced far enough. The wait is a parked condition-variable
/// wait after a short bounded spin — under contention (more rows in flight
/// than cores, busy machines) blocked rows sleep instead of burning a core
/// on yield loops, which is what the encoder's wavefront used to do.
///
/// The fast path is a lock-free acquire load; publish only takes the row's
/// mutex when a waiter is (or may be) parked. Progress values must be
/// monotonically non-decreasing per row.
class WavefrontProgress {
 public:
  /// `rows` independent counters, all starting at 0.
  explicit WavefrontProgress(int rows);

  /// Publishes `done` as row `row`'s progress (release order) and wakes any
  /// parked waiters of that row.
  void publish(int row, int done);

  /// Blocks until row `row`'s progress reaches at least `need`.
  void wait_for(int row, int need);

  /// Current progress of `row` (acquire order).
  [[nodiscard]] int progress(int row) const;

  [[nodiscard]] int rows() const { return static_cast<int>(rows_.size()); }

 private:
  struct Row {
    std::atomic<int> done{0};
    std::atomic<int> waiters{0};  ///< parked (or parking) consumers
    std::mutex mutex;
    std::condition_variable advanced;
  };
  // unique_ptr keeps Row's non-movable members happy inside the vector.
  std::vector<std::unique_ptr<Row>> rows_;
};

}  // namespace acbm::util
