#pragma once
// A small fixed-size worker pool for the encoder's parallel stages.
//
// Design constraints, in order:
//   1. Determinism support: every pool thread has a stable 0-based index
//      (worker_index()), so callers can give each worker private state — the
//      encoding pipeline hands each worker its own cloned MotionEstimator
//      and merges statistics afterwards.
//   2. FIFO dispatch *per lane*: tasks of one Queue start in submission
//      order. The wavefront scheduler in codec::EncoderPipeline relies on
//      this to guarantee that a macroblock row's predecessor row is always
//      running or finished before the row itself starts (no deadlock in the
//      dependency waits), and the frame pipeline relies on it to guarantee
//      that the task publishing a reference row is dispatched before any
//      task that parks on it.
//   3. Fair multi-session scheduling: when several Queues hold work (one
//      per concurrent encode/decode session), the dispatcher round-robins
//      across them, so one saturating session cannot starve the others.
//   4. No task futures or result plumbing — callers use wait_idle() or a
//      TaskGroup wait as the stage barrier and write results into pre-sized
//      arrays.
//
// Tasks may throw. An exception escaping a task is captured (never
// std::terminate): the first error of a TaskGroup is latched on the group
// and rethrown by the wait(group) barrier once the group's count drains;
// ungrouped task errors latch on the pool and rethrow from wait_idle().
// Later errors of the same batch are dropped — first error wins — and the
// batch always runs to completion so barrier counting stays intact. It is
// the caller's job (codec::EncoderPipeline does this) to make sure a task
// that throws still publishes whatever progress its siblings park on.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace acbm::util {

class ThreadPool;

/// Completion tracker for a batch of tasks submitted to a ThreadPool.
///
/// Unlike wait_idle(), a TaskGroup barrier covers only the tasks submitted
/// with it, so independent batches — the stages of two different frames, or
/// two sessions sharing one pool — can wait without observing each other.
/// A group belongs to one pool at a time; reuse is fine once a wait has
/// returned (the pending count is back to zero).
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

 private:
  friend class ThreadPool;
  std::size_t pending_ = 0;  ///< guarded by the owning pool's mutex
  /// First exception a task of this group threw; guarded by the pool mutex,
  /// consumed (rethrown and cleared) by the wait(group) that drains it.
  std::exception_ptr first_error_;
  /// Woken (under the pool mutex) when pending_ drops to zero or a new task
  /// joins the group — the latter lets a helping waiter pick it up.
  std::condition_variable done_or_work_;
};

class ThreadPool {
 public:
  class Queue;

 private:
  /// One unit of queued work plus its bookkeeping tags.
  struct Job {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    Queue* queue = nullptr;
  };

 public:
  /// An independent FIFO lane of the pool — one per encode/decode session.
  /// Jobs within a lane start in submission order; the dispatcher
  /// round-robins across lanes that hold work. The destructor blocks until
  /// every job submitted to the lane has finished, then unregisters it, so
  /// a Queue may simply be destroyed together with its session. Must not
  /// outlive the pool.
  class Queue {
   public:
    explicit Queue(ThreadPool& pool);
    ~Queue();
    Queue(const Queue&) = delete;
    Queue& operator=(const Queue&) = delete;

   private:
    friend class ThreadPool;
    ThreadPool& pool_;
    std::deque<Job> jobs_;       ///< guarded by pool_.mutex_
    std::size_t in_flight_ = 0;  ///< queued + running jobs of this lane
    /// Stable id for observability: the "pool.lane.depth.<id>" counter
    /// track this lane's queue depth is published under (obs/trace.hpp).
    /// Monotone per pool, never reused, so a session's lane keeps one
    /// identity across a trace even as other lanes come and go.
    std::size_t lane_id_ = 0;
  };

  /// Spawns `threads` workers. `threads` < 1 is clamped to 1.
  explicit ThreadPool(int threads);

  /// Drains every lane (runs every submitted task) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task on the pool's default lane. Tasks start in FIFO order
  /// relative to other default-lane tasks.
  void submit(std::function<void()> task);

  /// Enqueues a task on `queue`, optionally tagged with `group` so a
  /// wait(group) barrier covers it.
  void submit(Queue& queue, std::function<void()> task,
              TaskGroup* group = nullptr);

  /// Blocks until every submitted task (all lanes) has finished, then
  /// rethrows (and clears) the first error an ungrouped task threw.
  void wait_idle();

  /// Blocks until every task tagged with `group` has finished, then rethrows
  /// (and clears) the first error a task of the group threw. When called
  /// from one of this pool's own workers the wait HELPS: it runs queued
  /// tasks of that group (in lane order) instead of parking, so a task may
  /// submit subtasks and wait for them without deadlocking the pool. Only
  /// the waited group's tasks are helped — stealing unrelated work could
  /// park this worker on a dependency that is itself queued behind it.
  void wait(TaskGroup& group);

  /// 0-based index of the calling pool thread, or -1 when called from a
  /// thread that does not belong to any ThreadPool.
  [[nodiscard]] static int worker_index();

  /// Picks a worker count: `requested` if positive, the hardware
  /// concurrency (at least 1) for 0, and 1 (serial) for negative values.
  [[nodiscard]] static int resolve_thread_count(int requested);

 private:
  void worker_loop(int index);
  /// Pops the next job round-robin across lanes. Requires queued_total_ > 0
  /// and the pool mutex held.
  Job pop_next_locked();
  /// Post-run bookkeeping: counters, group completion, idle/drain wakeups.
  /// Requires the pool mutex held.
  void finish_job_locked(const Job& job);
  /// Latches `error` as the first error of the job's group (or of the pool
  /// for ungrouped jobs). Requires the pool mutex held.
  void record_error_locked(const Job& job, std::exception_ptr error);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  /// Woken when the pool goes idle or a lane drains (Queue::~Queue waits).
  std::condition_variable all_idle_;
  std::vector<Queue*> queues_;    ///< registered lanes; [0] is the default
  std::size_t rr_next_ = 0;       ///< round-robin cursor into queues_
  std::size_t next_lane_id_ = 0;  ///< observability lane ids (never reused)
  std::size_t queued_total_ = 0;  ///< jobs queued across all lanes
  std::size_t in_flight_ = 0;     ///< queued + currently running tasks
  /// First exception an UNGROUPED task threw; consumed by wait_idle().
  std::exception_ptr first_error_;
  bool stopping_ = false;
  /// Default lane for the two-argument submit(); declared after the
  /// bookkeeping it registers into.
  std::unique_ptr<Queue> default_queue_;
};

/// Per-row completion counters for wavefront-ordered parallel loops.
///
/// A producer working through row R publishes its progress with
/// publish(R, n); a consumer of row R+1 blocks in wait_for(R, need) until
/// row R has advanced far enough. The wait is a parked condition-variable
/// wait after a short bounded spin — under contention (more rows in flight
/// than cores, busy machines) blocked rows sleep instead of burning a core
/// on yield loops, which is what the encoder's wavefront used to do.
///
/// The fast path is a lock-free acquire load; publish only takes the row's
/// mutex when a waiter is (or may be) parked. Progress values must be
/// monotonically non-decreasing per row.
class WavefrontProgress {
 public:
  /// `rows` independent counters, all starting at 0.
  explicit WavefrontProgress(int rows);

  /// Publishes `done` as row `row`'s progress (release order) and wakes any
  /// parked waiters of that row.
  void publish(int row, int done);

  /// Blocks until row `row`'s progress reaches at least `need`.
  void wait_for(int row, int need);

  /// Current progress of `row` (acquire order).
  [[nodiscard]] int progress(int row) const;

  [[nodiscard]] int rows() const { return static_cast<int>(rows_.size()); }

 private:
  struct Row {
    std::atomic<int> done{0};
    std::atomic<int> waiters{0};  ///< parked (or parking) consumers
    std::mutex mutex;
    std::condition_variable advanced;
  };
  // unique_ptr keeps Row's non-movable members happy inside the vector.
  std::vector<std::unique_ptr<Row>> rows_;
};

/// A single monotonic progress counter with parked waiters — the cross-frame
/// sibling of WavefrontProgress. The frame pipeline publishes cumulative
/// reconstructed-row counts through one of these (a 64-bit value never wraps
/// over a stream, so the counter needs no per-frame reset and a stale waiter
/// can never be released early by a later frame reusing small values).
/// publish() takes the running maximum, so callers may publish out of order.
class ReadyCounter {
 public:
  /// Raises the counter to at least `value` and wakes parked waiters.
  void publish(std::uint64_t value);

  /// Blocks until the counter reaches at least `value`.
  void wait_for(std::uint64_t value);

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::atomic<int> waiters_{0};  ///< parked (or parking) consumers
  std::mutex mutex_;
  std::condition_variable advanced_;
};

}  // namespace acbm::util
