#include "util/fault_injector.hpp"

#include <chrono>
#include <new>
#include <thread>

#include "util/kv.hpp"

namespace acbm::util {

namespace {

/// splitmix64 finalizer (the same mixer Rng uses for seeding). Three rounds
/// over the packed (seed, site, lane, event) tuple give a uniform 64-bit
/// hash; dividing by 2^64 yields the uniform variate compared against p.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kEncodeThrow:
      return "encode_throw";
    case FaultSite::kTaskDelay:
      return "task_delay_ms";
  }
  return "?";
}

std::string fault_spec_usage() {
  return
      "fault spec grammar: fault:key=val[,key=val...] over the keys\n"
      "  site=encode_throw    alloc | encode_throw | task_delay_ms\n"
      "  p=0                  per-frame firing probability (0..1)\n"
      "  seed=1               hash seed (>=0); same seed, same firings\n"
      "  delay_ms=5           sleep length for site=task_delay_ms (1..10000)\n";
}

FaultConfig fault_config_from_spec(std::string_view spec) {
  // "fault" or "fault:key=val,...". The prefix is mandatory for the same
  // reason the channel grammar requires a model name: a bare key list does
  // not say which subsystem interprets it.
  std::string_view name = spec;
  std::string_view kv;
  if (const std::size_t colon = spec.find(':');
      colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    kv = spec.substr(colon + 1);
  }
  while (!name.empty() && name.front() == ' ') {
    name.remove_prefix(1);
  }
  while (!name.empty() && name.back() == ' ') {
    name.remove_suffix(1);
  }
  if (name != "fault") {
    throw SpecError("fault: spec must start with \"fault\", got \"" +
                    std::string(name) + "\"; " + fault_spec_usage());
  }

  FaultConfig config;
  for (const KeyValue& pair : parse_kv_list(kv)) {
    const std::string what = "fault key " + pair.first;
    if (pair.first == "site") {
      if (pair.second == "alloc") {
        config.site = FaultSite::kAlloc;
      } else if (pair.second == "encode_throw") {
        config.site = FaultSite::kEncodeThrow;
      } else if (pair.second == "task_delay_ms") {
        config.site = FaultSite::kTaskDelay;
      } else {
        throw SpecError("fault: site=" + pair.second +
                        " is not one of {alloc, encode_throw, task_delay_ms}");
      }
    } else if (pair.first == "p") {
      config.p = parse_double_strict(pair.second, what);
      if (!(config.p >= 0.0 && config.p <= 1.0)) {
        throw SpecError("fault: p=" + pair.second + " out of range [0, 1]");
      }
    } else if (pair.first == "seed") {
      const std::int64_t value = parse_int_strict(pair.second, what);
      if (value < 0) {
        throw SpecError("fault: seed must be >= 0");
      }
      config.seed = static_cast<std::uint64_t>(value);
    } else if (pair.first == "delay_ms") {
      const std::int64_t value = parse_int_strict(pair.second, what);
      if (value < 1 || value > 10000) {
        throw SpecError("fault: delay_ms=" + pair.second +
                        " out of range [1, 10000]");
      }
      config.delay_ms = static_cast<int>(value);
    } else {
      throw SpecError("fault: unknown key \"" + pair.first + "\"; " +
                      fault_spec_usage());
    }
  }
  return config;
}

std::string to_spec(const FaultConfig& config) {
  std::string out = "fault:site=";
  out += fault_site_name(config.site);
  out += ",p=" + format_double(config.p);
  out += ",seed=" + std::to_string(config.seed);
  if (config.site == FaultSite::kTaskDelay) {
    out += ",delay_ms=" + std::to_string(config.delay_ms);
  }
  return out;
}

bool FaultInjector::should_fire(std::uint64_t lane,
                                std::uint64_t event) const {
  if (config_.p <= 0.0) {
    return false;
  }
  if (config_.p >= 1.0) {
    return true;
  }
  std::uint64_t h = mix64(config_.seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(config_.site) + 1));
  h = mix64(h ^ lane);
  h = mix64(h ^ event);
  // 53-bit mantissa: exact double, uniform in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < config_.p;
}

void FaultInjector::inject(std::uint64_t lane, std::uint64_t event) const {
  if (!should_fire(lane, event)) {
    return;
  }
  switch (config_.site) {
    case FaultSite::kAlloc:
      throw std::bad_alloc();
    case FaultSite::kEncodeThrow:
      throw InjectedFault("injected fault (lane " + std::to_string(lane) +
                          ", event " + std::to_string(event) + ")");
    case FaultSite::kTaskDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(config_.delay_ms));
      return;
  }
}

std::int64_t FaultInjector::first_fire(std::uint64_t lane, std::uint64_t from,
                                       std::uint64_t count) const {
  for (std::uint64_t e = from; e < from + count; ++e) {
    if (should_fire(lane, e)) {
      return static_cast<std::int64_t>(e);
    }
  }
  return -1;
}

}  // namespace acbm::util
