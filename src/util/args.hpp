#pragma once
// Small command-line parser shared by the examples and bench binaries.
//
// Supports `--flag`, `--key value` and `--key=value`. Unknown options are an
// error (typos in sweep parameters silently changing an experiment would be
// worse than failing).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace acbm::util {

class ArgParser {
 public:
  /// Registers an option with a help string; `def` is the textual default
  /// shown in help and returned when the option is absent.
  void add_option(std::string name, std::string help, std::string def);
  /// Registers a boolean flag (present/absent).
  void add_flag(std::string name, std::string help);

  /// Parses argv. Returns false (and fills `error()`) on unknown options or
  /// missing values. `--help` sets `help_requested()`.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Renders usage text for all registered options.
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Option {
    std::string help;
    std::string def;
    bool is_flag = false;
  };
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::string error_;
  bool help_requested_ = false;
};

/// Splits "a,b,c" into trimmed tokens; empty tokens are dropped.
std::vector<std::string> split_csv_list(const std::string& text);

/// Same, with a caller-chosen separator — ';' for lists whose items embed
/// commas themselves (estimator specs: "ACBM:alpha=500,beta=8;FSBM").
std::vector<std::string> split_list(const std::string& text, char sep);

}  // namespace acbm::util
