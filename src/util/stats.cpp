#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace acbm::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace acbm::util
