#pragma once
// Wall-clock timing for the complexity benches.

#include <chrono>

namespace acbm::util {

/// Monotonic stopwatch. Construction starts it; `seconds()`/`millis()` read
/// elapsed time without stopping.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace acbm::util
