#include "util/bitstream.hpp"

#include <cassert>

namespace acbm::util {

void BitWriter::put_bits(std::uint64_t value, int count) {
  assert(count >= 0 && count <= 64);
  if (count < 64) {
    value &= (std::uint64_t{1} << count) - 1;
  }
  bit_count_ += static_cast<std::size_t>(count);
  while (count > 0) {
    const int room = 8 - partial_count_;
    const int take = count < room ? count : room;
    const std::uint64_t chunk = value >> (count - take);
    partial_ = static_cast<std::uint8_t>(
        (partial_ << take) | static_cast<std::uint8_t>(chunk & 0xFFu));
    partial_count_ += take;
    count -= take;
    if (partial_count_ == 8) {
      bytes_.push_back(partial_);
      partial_ = 0;
      partial_count_ = 0;
    }
  }
}

void BitWriter::align() {
  if (partial_count_ != 0) {
    put_bits(0, 8 - partial_count_);
  }
}

void BitWriter::put_bytes(std::span<const std::uint8_t> data) {
  assert(partial_count_ == 0 && "put_bytes requires byte alignment");
  bytes_.insert(bytes_.end(), data.begin(), data.end());
  bit_count_ += data.size() * 8;
}

std::vector<std::uint8_t> BitWriter::take() {
  align();
  std::vector<std::uint8_t> out = std::move(bytes_);
  reset();
  return out;
}

void BitWriter::reset() {
  bytes_.clear();
  partial_ = 0;
  partial_count_ = 0;
  bit_count_ = 0;
}

std::uint64_t BitReader::get_bits(int count) {
  assert(count >= 0 && count <= 64);
  std::uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    const std::size_t byte_index = bit_pos_ >> 3;
    std::uint64_t bit = 0;
    if (byte_index < data_.size()) {
      const int shift = 7 - static_cast<int>(bit_pos_ & 7u);
      bit = (data_[byte_index] >> shift) & 1u;
      ++bit_pos_;
    } else {
      exhausted_ = true;
    }
    value = (value << 1) | bit;
  }
  return value;
}

void BitReader::align() {
  bit_pos_ = (bit_pos_ + 7u) & ~std::size_t{7};
  if (bit_pos_ > bit_size()) {
    bit_pos_ = bit_size();
  }
}

void BitReader::skip_bits(std::size_t count) {
  if (count > bit_size() - bit_pos_) {
    bit_pos_ = bit_size();
    exhausted_ = true;
    return;
  }
  bit_pos_ += count;
}

}  // namespace acbm::util
