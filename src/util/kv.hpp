#pragma once
// The key=value half of the project's spec grammar.
//
// Two user-facing string APIs share one comma-separated `key=val` syntax:
// estimator specs ("ACBM:alpha=500,beta=8", me/spec.hpp) and encoder
// configuration maps ("qp=16,slices=4", codec/config_map.hpp). This header
// owns the part both need — tokenising a `key=val,key=val` list with
// duplicate/syntax diagnostics, plus strict scalar parsers that reject
// trailing garbage — so the two grammars cannot drift apart.
//
// Parse errors throw util::SpecError (an std::invalid_argument), which CLI
// entry points catch to exit 2 with the offending token quoted.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace acbm::util {

/// Error type for every spec-grammar failure (syntax, unknown key, range).
/// Distinct from plain std::invalid_argument so CLI frontends can map
/// user-authored spec mistakes to exit code 2 (usage error) while other
/// invalid_arguments stay internal errors.
class SpecError : public std::invalid_argument {
 public:
  explicit SpecError(const std::string& message)
      : std::invalid_argument(message) {}
};

/// One `key=value` pair, in source order.
using KeyValue = std::pair<std::string, std::string>;

/// Parses "k1=v1,k2=v2,..." into ordered pairs.
///
/// Rules: an empty `text` yields an empty list; every comma-separated token
/// must contain '='; keys must be non-empty; a repeated key is an error
/// (a sweep spec silently keeping one of two alphas would corrupt an
/// experiment). Values may be empty and spaces around tokens are trimmed.
/// @throws SpecError naming the offending token
[[nodiscard]] std::vector<KeyValue> parse_kv_list(std::string_view text);

/// Renders pairs back into the grammar ("k1=v1,k2=v2").
[[nodiscard]] std::string format_kv_list(const std::vector<KeyValue>& pairs);

/// Strict scalar parsers: the whole token must be consumed, so "12x" or an
/// empty string is an error rather than 12 / 0. `what` names the value in
/// the error message ("alpha", "key qp", ...).
/// @throws SpecError
[[nodiscard]] double parse_double_strict(std::string_view text,
                                         const std::string& what);
[[nodiscard]] std::int64_t parse_int_strict(std::string_view text,
                                            const std::string& what);
/// Accepts 0/1/true/false/on/off (case-sensitive, the spellings docs use).
[[nodiscard]] bool parse_bool_strict(std::string_view text,
                                     const std::string& what);

/// Shortest decimal form that parses back to exactly `value` — what keeps
/// to_spec() round-trippable without stamping 17-digit noise into artifact
/// context strings (1000 stays "1000", 0.25 stays "0.25").
[[nodiscard]] std::string format_double(double value);

}  // namespace acbm::util
