#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace acbm::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  assert(bound > 0);
  // Lemire-style rejection on the top 32 bits.
  while (true) {
    const std::uint32_t x = static_cast<std::uint32_t>(next_u64() >> 32);
    const std::uint64_t m = static_cast<std::uint64_t>(x) * bound;
    const std::uint32_t low = static_cast<std::uint32_t>(m);
    if (low >= bound) {
      return static_cast<std::uint32_t>(m >> 32);
    }
    const std::uint32_t threshold = (0u - bound) % bound;
    if (low >= threshold) {
      return static_cast<std::uint32_t>(m >> 32);
    }
  }
}

std::int32_t Rng::next_in_range(std::int32_t lo, std::int32_t hi) {
  assert(lo <= hi);
  const std::uint32_t span =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(hi) - lo + 1);
  return lo + static_cast<std::int32_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace acbm::util
