#include "util/args.hpp"

#include <cstdlib>
#include <sstream>

namespace acbm::util {

void ArgParser::add_option(std::string name, std::string help,
                           std::string def) {
  options_[std::move(name)] = Option{std::move(help), std::move(def), false};
}

void ArgParser::add_flag(std::string name, std::string help) {
  options_[std::move(name)] = Option{std::move(help), "", true};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      continue;
    }
    if (token.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + token;
      return false;
    }
    token = token.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.resize(eq);
      has_value = true;
    }
    const auto it = options_.find(token);
    if (it == options_.end()) {
      error_ = "unknown option: --" + token;
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        error_ = "flag --" + token + " does not take a value";
        return false;
      }
      values_[token] = "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "option --" + token + " requires a value";
        return false;
      }
      value = argv[++i];
    }
    values_[token] = value;
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  if (const auto it = options_.find(name); it != options_.end()) {
    return it->second.def;
  }
  return {};
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool ArgParser::get_flag(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && it->second == "1";
}

std::string ArgParser::usage(const std::string& program) const {
  std::ostringstream oss;
  oss << "usage: " << program << " [options]\n";
  for (const auto& [name, opt] : options_) {
    oss << "  --" << name;
    if (!opt.is_flag) {
      oss << " <value>";
    }
    oss << "\n      " << opt.help;
    if (!opt.def.empty()) {
      oss << " (default: " << opt.def << ")";
    }
    oss << '\n';
  }
  return oss.str();
}

std::vector<std::string> split_csv_list(const std::string& text) {
  return split_list(text, ',');
}

std::vector<std::string> split_list(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    // trim
    std::size_t b = current.find_first_not_of(" \t");
    std::size_t e = current.find_last_not_of(" \t");
    if (b != std::string::npos) {
      out.push_back(current.substr(b, e - b + 1));
    }
    current.clear();
  };
  for (char c : text) {
    if (c == sep) {
      flush();
    } else {
      current += c;
    }
  }
  flush();
  return out;
}

}  // namespace acbm::util
