#pragma once
// CSV emission and aligned console tables.
//
// Every bench writes two artefacts: a CSV next to the binary (for plotting)
// and a human-readable table on stdout that mirrors the paper's row layout.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace acbm::util {

/// Minimal CSV writer. Quotes fields containing separators/quotes/newlines
/// per RFC 4180 so downstream tooling parses the output unambiguously.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; each cell is escaped as needed.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 3);

 private:
  std::ostream* out_;
};

/// Fixed-layout console table with a header row, right-aligned numeric
/// columns and column widths computed from contents.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders to the stream with single-space-padded columns and a rule
  /// under the header.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Opens `path` for writing and returns the stream; throws std::runtime_error
/// on failure (bench binaries treat an unwritable CSV as fatal).
std::string sanitize_filename(std::string_view name);

}  // namespace acbm::util
