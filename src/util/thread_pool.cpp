#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace acbm::util {

namespace {
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::worker_index() { return tls_worker_index; }

int ThreadPool::resolve_thread_count(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (requested < 0) {
    return 1;  // nonsense input degrades to serial, never to oversubscription
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ThreadPool::worker_loop(int index) {
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

WavefrontProgress::WavefrontProgress(int rows) {
  rows_.reserve(static_cast<std::size_t>(std::max(0, rows)));
  for (int i = 0; i < rows; ++i) {
    rows_.push_back(std::make_unique<Row>());
  }
}

void WavefrontProgress::publish(int row, int done) {
  Row& r = *rows_[static_cast<std::size_t>(row)];
  // seq_cst on the done-store / waiters-load pair (and their counterparts in
  // wait_for) forbids the store-load reordering that would let a publisher
  // miss a consumer mid-parking AND that consumer miss the new progress
  // value — the classic lost-wakeup interleaving.
  r.done.store(done);
  if (r.waiters.load() > 0) {
    // The lock orders this wakeup against a consumer that passed the
    // predicate check but has not finished parking yet.
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.advanced.notify_all();
  }
}

void WavefrontProgress::wait_for(int row, int need) {
  Row& r = *rows_[static_cast<std::size_t>(row)];
  // Bounded spin: wavefront neighbours usually trail by microseconds, so a
  // few polls avoid the syscall entirely in the common case.
  for (int spin = 0; spin < 64; ++spin) {
    if (r.done.load(std::memory_order_acquire) >= need) {
      return;
    }
  }
  r.waiters.fetch_add(1);
  {
    std::unique_lock<std::mutex> lock(r.mutex);
    r.advanced.wait(lock, [&r, need] { return r.done.load() >= need; });
  }
  r.waiters.fetch_sub(1);
}

int WavefrontProgress::progress(int row) const {
  return rows_[static_cast<std::size_t>(row)]->done.load(
      std::memory_order_acquire);
}

}  // namespace acbm::util
