#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.hpp"

namespace acbm::util {

namespace {
thread_local int tls_worker_index = -1;
/// Identity of the pool the calling thread belongs to. worker_index() alone
/// is not enough for the helping wait: a worker of pool A calling into pool
/// B must park, not help (B's lanes are not its responsibility, and B's
/// per-worker state is indexed by B's thread indices).
thread_local ThreadPool* tls_worker_pool = nullptr;
}  // namespace

namespace {
/// Publishes a lane's queue depth as a per-lane counter track
/// ("lane.depth.<id>"). Disarmed this is one relaxed load + branch; callers
/// hold the pool mutex, so the depth read is exact.
void trace_lane_depth(std::size_t lane_id, std::size_t depth) {
  obs::counter("pool", "lane.depth", static_cast<std::int32_t>(lane_id),
               static_cast<std::uint64_t>(depth));
}
}  // namespace

ThreadPool::Queue::Queue(ThreadPool& pool) : pool_(pool) {
  const std::lock_guard<std::mutex> lock(pool_.mutex_);
  lane_id_ = pool_.next_lane_id_++;
  pool_.queues_.push_back(this);
}

ThreadPool::Queue::~Queue() {
  std::unique_lock<std::mutex> lock(pool_.mutex_);
  // Drain this lane before unregistering: a session tearing down must not
  // leave its tasks running against freed state.
  pool_.all_idle_.wait(lock, [this] { return in_flight_ == 0; });
  auto& queues = pool_.queues_;
  queues.erase(std::find(queues.begin(), queues.end(), this));
  if (pool_.rr_next_ >= queues.size()) {
    pool_.rr_next_ = 0;
  }
}

ThreadPool::ThreadPool(int threads) {
  default_queue_ = std::make_unique<Queue>(*this);
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  // Workers drained every lane before exiting; ~Queue of the default lane
  // returns immediately.
}

void ThreadPool::submit(std::function<void()> task) {
  submit(*default_queue_, std::move(task), nullptr);
}

void ThreadPool::submit(Queue& queue, std::function<void()> task,
                        TaskGroup* group) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue.jobs_.push_back(Job{std::move(task), group, &queue});
    ++queue.in_flight_;
    ++queued_total_;
    ++in_flight_;
    trace_lane_depth(queue.lane_id_, queue.jobs_.size());
    if (group != nullptr) {
      ++group->pending_;
      // Wake a helping waiter of this group; notified under the mutex so the
      // group cannot be destroyed between the count update and the notify.
      group->done_or_work_.notify_all();
    }
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::wait(TaskGroup& group) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool may_help = (tls_worker_pool == this);
  for (;;) {
    if (group.pending_ == 0) {
      if (group.first_error_ != nullptr) {
        std::exception_ptr error = std::exchange(group.first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
      }
      return;
    }
    if (may_help) {
      // Run a queued task of this group instead of parking the worker.
      // Lanes are scanned in dispatch order and each lane front-to-back, so
      // group-relative FIFO (the wavefront's ordering contract) holds for
      // helped tasks too.
      Job job;
      bool found = false;
      for (Queue* queue : queues_) {
        auto it = std::find_if(queue->jobs_.begin(), queue->jobs_.end(),
                               [&group](const Job& j) {
                                 return j.group == &group;
                               });
        if (it != queue->jobs_.end()) {
          job = std::move(*it);
          queue->jobs_.erase(it);
          --queued_total_;
          trace_lane_depth(queue->lane_id_, queue->jobs_.size());
          found = true;
          break;
        }
      }
      if (found) {
        lock.unlock();
        std::exception_ptr error;
        try {
          obs::Span span("pool", "help");
          job.fn();
        } catch (...) {
          error = std::current_exception();
        }
        lock.lock();
        if (error != nullptr) {
          record_error_locked(job, std::move(error));
        }
        finish_job_locked(job);
        continue;
      }
      // Every task of the group is already running on some other thread;
      // park until one finishes (or a new group task arrives to help with).
    }
    group.done_or_work_.wait(lock);
  }
}

int ThreadPool::worker_index() { return tls_worker_index; }

int ThreadPool::resolve_thread_count(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (requested < 0) {
    return 1;  // nonsense input degrades to serial, never to oversubscription
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::Job ThreadPool::pop_next_locked() {
  assert(queued_total_ > 0);
  const std::size_t lanes = queues_.size();
  const std::size_t start = rr_next_ < lanes ? rr_next_ : 0;
  for (std::size_t i = 0; i < lanes; ++i) {
    Queue* queue = queues_[(start + i) % lanes];
    if (!queue->jobs_.empty()) {
      // Advance the cursor past the served lane: strict round-robin across
      // lanes that hold work, FIFO within each lane.
      rr_next_ = (start + i + 1) % lanes;
      Job job = std::move(queue->jobs_.front());
      queue->jobs_.pop_front();
      --queued_total_;
      trace_lane_depth(queue->lane_id_, queue->jobs_.size());
      return job;
    }
  }
  assert(false && "queued_total_ > 0 but no lane holds a job");
  return Job{};
}

void ThreadPool::record_error_locked(const Job& job,
                                     std::exception_ptr error) {
  std::exception_ptr& slot =
      job.group != nullptr ? job.group->first_error_ : first_error_;
  if (slot == nullptr) {
    slot = std::move(error);
  }
}

void ThreadPool::finish_job_locked(const Job& job) {
  --in_flight_;
  --job.queue->in_flight_;
  if (job.group != nullptr && --job.group->pending_ == 0) {
    job.group->done_or_work_.notify_all();
  }
  if (in_flight_ == 0 || job.queue->in_flight_ == 0) {
    all_idle_.notify_all();
  }
}

void ThreadPool::worker_loop(int index) {
  tls_worker_index = index;
  tls_worker_pool = this;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    {
      // The park span measures idle-worker time; its end event pairs up
      // inside the export only when the worker actually woke up again, so
      // workers still parked at export simply drop the open span.
      obs::Span park("pool", "park");
      work_available_.wait(lock,
                           [this] { return stopping_ || queued_total_ > 0; });
    }
    if (queued_total_ == 0) {
      return;  // stopping_ and drained
    }
    Job job = pop_next_locked();
    lock.unlock();
    std::exception_ptr error;
    try {
      obs::Span span("pool", "task");
      job.fn();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr) {
      record_error_locked(job, std::move(error));
    }
    finish_job_locked(job);
  }
}

WavefrontProgress::WavefrontProgress(int rows) {
  rows_.reserve(static_cast<std::size_t>(std::max(0, rows)));
  for (int i = 0; i < rows; ++i) {
    rows_.push_back(std::make_unique<Row>());
  }
}

void WavefrontProgress::publish(int row, int done) {
  Row& r = *rows_[static_cast<std::size_t>(row)];
  // seq_cst on the done-store / waiters-load pair (and their counterparts in
  // wait_for) forbids the store-load reordering that would let a publisher
  // miss a consumer mid-parking AND that consumer miss the new progress
  // value — the classic lost-wakeup interleaving.
  r.done.store(done);
  if (r.waiters.load() > 0) {
    // The lock orders this wakeup against a consumer that passed the
    // predicate check but has not finished parking yet.
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.advanced.notify_all();
  }
}

void WavefrontProgress::wait_for(int row, int need) {
  Row& r = *rows_[static_cast<std::size_t>(row)];
  // Bounded spin: wavefront neighbours usually trail by microseconds, so a
  // few polls avoid the syscall entirely in the common case.
  for (int spin = 0; spin < 64; ++spin) {
    if (r.done.load(std::memory_order_acquire) >= need) {
      return;
    }
  }
  r.waiters.fetch_add(1);
  {
    std::unique_lock<std::mutex> lock(r.mutex);
    r.advanced.wait(lock, [&r, need] { return r.done.load() >= need; });
  }
  r.waiters.fetch_sub(1);
}

int WavefrontProgress::progress(int row) const {
  return rows_[static_cast<std::size_t>(row)]->done.load(
      std::memory_order_acquire);
}

void ReadyCounter::publish(std::uint64_t value) {
  // Running maximum with the same seq_cst store/waiters-load handshake as
  // WavefrontProgress::publish (see the comment there).
  std::uint64_t cur = value_.load();
  while (cur < value && !value_.compare_exchange_weak(cur, value)) {
  }
  if (waiters_.load() > 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    advanced_.notify_all();
  }
}

void ReadyCounter::wait_for(std::uint64_t value) {
  for (int spin = 0; spin < 64; ++spin) {
    if (value_.load(std::memory_order_acquire) >= value) {
      return;
    }
  }
  waiters_.fetch_add(1);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    advanced_.wait(lock, [this, value] { return value_.load() >= value; });
  }
  waiters_.fetch_sub(1);
}

}  // namespace acbm::util
