#pragma once
// Bit-oriented I/O used by the codec's entropy layer.
//
// BitWriter accumulates bits MSB-first into a byte buffer; BitReader consumes
// the same layout. The pair is round-trip exact and is the only place in the
// codebase that touches sub-byte layout, so every entropy code (exp-Golomb,
// run/level, sign bits) is built on top of these two classes.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace acbm::util {

/// Writes bits MSB-first into an internal byte buffer.
///
/// The writer never throws on normal operation; memory exhaustion propagates
/// as std::bad_alloc from the underlying vector.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `count` bits of `value`, most-significant bit first.
  /// `count` must be in [0, 64]; bits above `count` in `value` are ignored.
  void put_bits(std::uint64_t value, int count);

  /// Appends a single bit (0 or 1).
  void put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

  /// Pads the current partial byte with zero bits up to a byte boundary.
  /// No-op when already aligned.
  void align();

  /// Appends whole bytes. The writer must be byte-aligned (asserted): the
  /// codec concatenates independently produced, byte-aligned slice payloads
  /// and a sub-byte shift would silently re-encode every following bit.
  void put_bytes(std::span<const std::uint8_t> data);

  /// Number of bits written so far (including any partial byte).
  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

  /// Finishes the stream (zero-pads to a byte boundary) and returns the
  /// buffer. The writer is reset to an empty state.
  [[nodiscard]] std::vector<std::uint8_t> take();

  /// Read-only view of the bytes completed so far (excludes a partial byte).
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }

  /// Discards all written data and returns the writer to the initial state.
  void reset();

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t partial_ = 0;   // bits accumulated for the in-progress byte
  int partial_count_ = 0;      // number of valid MSBs in partial_
  std::size_t bit_count_ = 0;
};

/// Reads bits MSB-first from a byte buffer produced by BitWriter.
///
/// Reading past the end is reported via `exhausted()`; out-of-data reads
/// return zero bits so a malformed stream degrades deterministically instead
/// of invoking undefined behaviour.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Reads `count` bits (0..64) and returns them right-aligned.
  [[nodiscard]] std::uint64_t get_bits(int count);

  /// Reads a single bit.
  [[nodiscard]] bool get_bit() { return get_bits(1) != 0; }

  /// Skips forward to the next byte boundary.
  void align();

  /// Advances the read position by `count` bits without decoding them (the
  /// slice directory walk: payload lengths are known, contents are not yet
  /// needed). Clamps at the end of the buffer and sets `exhausted()` when
  /// the skip ran past it.
  void skip_bits(std::size_t count);

  /// Bits consumed so far.
  [[nodiscard]] std::size_t bit_position() const { return bit_pos_; }

  /// Total bits available in the underlying buffer.
  [[nodiscard]] std::size_t bit_size() const { return data_.size() * 8; }

  /// True once a read has requested bits beyond the end of the buffer.
  [[nodiscard]] bool exhausted() const { return exhausted_; }

  /// Bits remaining before the end of the buffer.
  [[nodiscard]] std::size_t bits_left() const {
    return bit_size() - bit_pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t bit_pos_ = 0;
  bool exhausted_ = false;
};

}  // namespace acbm::util
