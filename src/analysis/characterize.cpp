#include "analysis/characterize.hpp"

#include <algorithm>
#include <stdexcept>

#include "me/full_search.hpp"
#include "me/sad.hpp"
#include "video/interp.hpp"
#include "video/pad.hpp"

namespace acbm::analysis {

TruthSequence make_truth_sequence(const video::Plane& source,
                                  video::PictureSize size,
                                  const std::vector<me::Mv>& motions,
                                  int margin) {
  if (source.width() < size.width + 2 * margin ||
      source.height() < size.height + 2 * margin) {
    throw std::invalid_argument("truth sequence: source image too small");
  }
  TruthSequence seq;
  seq.motions = motions;

  // Frames carry genuine source content in their borders (crop_with_context)
  // so unrestricted ±p search near the picture edge compares against the
  // real scene, exactly as in the paper's global-motion setup.
  int off_x = margin;
  int off_y = margin;
  seq.frames.push_back(video::crop_with_context(source, off_x, off_y,
                                                size.width, size.height));
  for (const me::Mv& m : motions) {
    if (!m.is_integer()) {
      throw std::invalid_argument("truth sequence: motions must be integer");
    }
    // motions[] are ground-truth *motion vectors* (current block → its match
    // in the reference frame): advancing the sampling window by +v makes the
    // new frame's content at x equal the previous frame's content at x+v,
    // i.e. FSBM's best match sits at displacement +v.
    off_x += m.x / 2;
    off_y += m.y / 2;
    if (off_x < 0 || off_y < 0 ||
        off_x + size.width > source.width() ||
        off_y + size.height > source.height()) {
      throw std::invalid_argument(
          "truth sequence: cumulative motion leaves the source margin");
    }
    seq.frames.push_back(video::crop_with_context(source, off_x, off_y,
                                                  size.width, size.height));
  }
  return seq;
}

std::vector<me::Mv> paper_truth_motions() {
  // Nine global motions, mixed magnitude and direction, all inside p = 15.
  // Half-pel units (all integer-pel): {2,0}=+1 sample right.
  return {
      me::mv_from_fullpel(1, 0),    me::mv_from_fullpel(-2, 1),
      me::mv_from_fullpel(3, -3),   me::mv_from_fullpel(0, 4),
      me::mv_from_fullpel(-5, -2),  me::mv_from_fullpel(7, 5),
      me::mv_from_fullpel(-9, 6),   me::mv_from_fullpel(11, -8),
      me::mv_from_fullpel(-13, 13),
  };
}

std::vector<BlockObservation> characterize(const TruthSequence& sequence,
                                           int search_range) {
  std::vector<BlockObservation> observations;
  if (sequence.frames.size() < 2) {
    return observations;
  }
  const int w = sequence.frames[0].width();
  const int h = sequence.frames[0].height();
  const int mbs_x = w / me::kBlockSize;
  const int mbs_y = h / me::kBlockSize;
  observations.reserve(sequence.motions.size() *
                       static_cast<std::size_t>(mbs_x * mbs_y));

  const me::FullSearch fsbm;
  for (std::size_t t = 0; t < sequence.motions.size(); ++t) {
    const video::Plane& ref = sequence.frames[t];
    const video::Plane& cur = sequence.frames[t + 1];
    const video::HalfpelPlanes ref_half(ref);
    const me::Mv truth = sequence.motions[t];

    for (int by = 0; by < mbs_y; ++by) {
      for (int bx = 0; bx < mbs_x; ++bx) {
        me::BlockContext ctx;
        ctx.cur = &cur;
        ctx.ref = &ref_half;
        ctx.x = bx * me::kBlockSize;
        ctx.y = by * me::kBlockSize;
        ctx.bx = bx;
        ctx.by = by;
        ctx.window = me::unrestricted_window(search_range);
        ctx.half_pel = false;  // error classes are integer-pel (§3.1)

        const me::FullSearchResult full = fsbm.search_full(ctx);

        BlockObservation obs;
        obs.frame = static_cast<int>(t);
        obs.bx = bx;
        obs.by = by;
        obs.error = (full.best_integer_mv - truth).linf() / 2;
        obs.intra_sad = me::intra_sad(cur, ctx.x, ctx.y, ctx.bw, ctx.bh);
        obs.sad_deviation = full.sad_deviation();
        obs.sad_min = full.best_integer_sad;
        observations.push_back(obs);
      }
    }
  }
  return observations;
}

std::vector<ErrorClassSummary> summarize_by_error(
    const std::vector<BlockObservation>& observations) {
  std::vector<ErrorClassSummary> summaries(6);
  for (int c = 0; c < 6; ++c) {
    summaries[static_cast<std::size_t>(c)].error_class = c;
  }
  for (const BlockObservation& obs : observations) {
    const int c = std::min(obs.error, 5);
    ErrorClassSummary& s = summaries[static_cast<std::size_t>(c)];
    ++s.blocks;
    s.intra_sad.add(obs.intra_sad);
    s.sad_deviation.add(static_cast<double>(obs.sad_deviation));
    s.sad_min.add(obs.sad_min);
  }
  return summaries;
}

}  // namespace acbm::analysis
