#pragma once
// The §3.1 experimental setup ("MOVE → FSBM → count MV errors", Fig. 3) and
// the Intra_SAD × SAD_deviation scatter data behind Fig. 4.
//
// A known-truth sequence is built by windowing a large still image at
// perfectly known global displacements; FSBM then runs frame-to-frame and
// each block's found vector is compared with the introduced one. Blocks are
// bucketed by MV error (0, 1, 2, 3, 4, ≥5 integer samples, L∞) and their
// texture/ambiguity statistics collected.

#include <cstdint>
#include <string>
#include <vector>

#include "me/types.hpp"
#include "util/stats.hpp"
#include "video/frame.hpp"
#include "video/plane.hpp"

namespace acbm::analysis {

/// A sequence with per-transition ground-truth global motion.
struct TruthSequence {
  std::vector<video::Plane> frames;  ///< luma only; ME is luma-only
  std::vector<me::Mv> motions;       ///< motions[k]: frame k → k+1, half-pel
};

/// Builds the paper's ten-frame truth sequence: `source` must be at least
/// (size + 2·margin) in each dimension; frame k is the window at the
/// cumulative displacement of `motions[0..k)`. Throws std::invalid_argument
/// if the cumulative path leaves the margin or any motion is not integer.
TruthSequence make_truth_sequence(const video::Plane& source,
                                  video::PictureSize size,
                                  const std::vector<me::Mv>& motions,
                                  int margin);

/// The paper's nine test displacements: a mix of small/medium/large moves in
/// all quadrants, all within the p = 15 window.
[[nodiscard]] std::vector<me::Mv> paper_truth_motions();

/// One block's characterization record.
struct BlockObservation {
  int frame = 0;  ///< transition index (current frame = frame+1)
  int bx = 0;
  int by = 0;
  int error = 0;  ///< |found − truth|∞ in integer samples
  std::uint32_t intra_sad = 0;
  std::uint64_t sad_deviation = 0;
  std::uint32_t sad_min = 0;
};

/// Runs integer-pel FSBM over every transition of the sequence and records
/// each block's error class and statistics.
std::vector<BlockObservation> characterize(const TruthSequence& sequence,
                                           int search_range);

/// Fig.-4 style summary for one error class.
struct ErrorClassSummary {
  int error_class = 0;  ///< 0..4, 5 meaning ≥5
  std::size_t blocks = 0;
  util::RunningStats intra_sad;
  util::RunningStats sad_deviation;
  util::RunningStats sad_min;
};

/// Buckets observations into classes 0..4 and ≥5 (the paper's six graphs).
std::vector<ErrorClassSummary> summarize_by_error(
    const std::vector<BlockObservation>& observations);

}  // namespace acbm::analysis
