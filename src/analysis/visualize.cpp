#include "analysis/visualize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace acbm::analysis {

RgbImage RgbImage::solid(int w, int h, std::uint8_t r, std::uint8_t g,
                         std::uint8_t b) {
  RgbImage image;
  image.width = w;
  image.height = h;
  image.rgb.resize(static_cast<std::size_t>(w) * h * 3);
  for (std::size_t i = 0; i < image.rgb.size(); i += 3) {
    image.rgb[i] = r;
    image.rgb[i + 1] = g;
    image.rgb[i + 2] = b;
  }
  return image;
}

void RgbImage::set(int x, int y, std::uint8_t r, std::uint8_t g,
                   std::uint8_t b) {
  assert(x >= 0 && x < width && y >= 0 && y < height);
  const std::size_t i =
      (static_cast<std::size_t>(y) * width + static_cast<std::size_t>(x)) * 3;
  rgb[i] = r;
  rgb[i + 1] = g;
  rgb[i + 2] = b;
}

void write_pgm(const std::string& path, const video::Plane& plane) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("visualize: cannot open " + path);
  }
  out << "P5\n" << plane.width() << ' ' << plane.height() << "\n255\n";
  for (int y = 0; y < plane.height(); ++y) {
    out.write(reinterpret_cast<const char*>(plane.row(y)), plane.width());
  }
  if (!out) {
    throw std::runtime_error("visualize: write failure on " + path);
  }
}

void write_ppm(const std::string& path, const RgbImage& image) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("visualize: cannot open " + path);
  }
  out << "P6\n" << image.width << ' ' << image.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.rgb.data()),
            static_cast<std::streamsize>(image.rgb.size()));
  if (!out) {
    throw std::runtime_error("visualize: write failure on " + path);
  }
}

namespace {

/// Direction (radians) → RGB on a simple 6-segment hue wheel at the given
/// saturation in [0,1].
void hue_to_rgb(double angle, double saturation, std::uint8_t rgb[3]) {
  const double pi = 3.14159265358979323846;
  double h = std::fmod(angle + 2.0 * pi, 2.0 * pi) / (2.0 * pi) * 6.0;
  const int seg = static_cast<int>(h) % 6;
  const double f = h - std::floor(h);
  const double v = 1.0;
  const double p = 1.0 - saturation;
  const double q = 1.0 - saturation * f;
  const double t = 1.0 - saturation * (1.0 - f);
  double r = v, g = v, b = v;
  switch (seg) {
    case 0: r = v; g = t; b = p; break;
    case 1: r = q; g = v; b = p; break;
    case 2: r = p; g = v; b = t; break;
    case 3: r = p; g = q; b = v; break;
    case 4: r = t; g = p; b = v; break;
    case 5: r = v; g = p; b = q; break;
    default: break;
  }
  rgb[0] = static_cast<std::uint8_t>(std::lround(255.0 * r));
  rgb[1] = static_cast<std::uint8_t>(std::lround(255.0 * g));
  rgb[2] = static_cast<std::uint8_t>(std::lround(255.0 * b));
}

}  // namespace

RgbImage render_mv_field(const me::MvField& field, int scale,
                         int max_halfpel) {
  assert(scale > 0 && max_halfpel > 0);
  RgbImage image = RgbImage::solid(field.mbs_x() * scale,
                                   field.mbs_y() * scale, 0, 0, 0);
  for (int by = 0; by < field.mbs_y(); ++by) {
    for (int bx = 0; bx < field.mbs_x(); ++bx) {
      const me::Mv mv = field.at(bx, by);
      std::uint8_t rgb[3] = {128, 128, 128};  // zero vector: gray
      if (mv.x != 0 || mv.y != 0) {
        const double magnitude =
            std::min(1.0, std::hypot(mv.x, mv.y) / max_halfpel);
        hue_to_rgb(std::atan2(static_cast<double>(mv.y),
                              static_cast<double>(mv.x)),
                   magnitude, rgb);
      }
      for (int py = 0; py < scale; ++py) {
        for (int px = 0; px < scale; ++px) {
          image.set(bx * scale + px, by * scale + py, rgb[0], rgb[1],
                    rgb[2]);
        }
      }
    }
  }
  return image;
}

RgbImage render_decision_map(const std::vector<core::BlockDecision>& decisions,
                             int mbs_x, int mbs_y, int scale) {
  assert(scale > 0);
  RgbImage image = RgbImage::solid(mbs_x * scale, mbs_y * scale, 0, 0, 0);
  for (const core::BlockDecision& d : decisions) {
    if (d.bx < 0 || d.bx >= mbs_x || d.by < 0 || d.by >= mbs_y) {
      continue;
    }
    std::uint8_t r = 0, g = 0, b = 0;
    switch (d.outcome) {
      case core::AcbmOutcome::kAcceptLowActivity:
        g = 200;
        break;
      case core::AcbmOutcome::kAcceptGoodMatch:
        b = 220;
        g = 80;
        break;
      case core::AcbmOutcome::kCritical:
        r = 220;
        break;
    }
    for (int py = 0; py < scale; ++py) {
      for (int px = 0; px < scale; ++px) {
        image.set(d.bx * scale + px, d.by * scale + py, r, g, b);
      }
    }
  }
  return image;
}

}  // namespace acbm::analysis
