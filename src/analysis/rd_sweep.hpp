#pragma once
// The rate–distortion sweep driver behind Figs. 5/6 and Table 1.
//
// One function encodes a sequence at a series of quantiser values with a
// chosen motion-estimation algorithm and reports, per Qp: average luma PSNR,
// bitrate in kbit/s, and the average number of candidate positions searched
// per macroblock — exactly the three quantities the paper plots/tabulates.

#include <memory>
#include <string>
#include <vector>

#include "codec/encoder.hpp"
#include "core/params.hpp"
#include "me/estimator.hpp"
#include "video/frame.hpp"

namespace acbm::analysis {

/// The algorithms compared in the paper's §4 plus the classical baselines
/// this library adds: candidate-reduction searches (TSS/NTSS/4SS/DS/CDS,
/// the paper's refs [3–5] family) and pixel-decimation searches
/// (kFsbmAdaptiveDecimation / kFsbmSubsampled, the refs [6–8] family).
enum class Algorithm {
  kFsbm,
  kPbm,
  kAcbm,
  kTss,
  kNtss,
  kFss,
  kDs,
  kHexbs,
  kCds,
  kFsbmAdaptiveDecimation,
  kFsbmSubsampled,
};

/// Display name matching the paper's legends ("FSBM", "PBM", "ACBM", ...).
/// Doubles as the registry key, so every name is also a valid spec.
[[nodiscard]] std::string algorithm_name(Algorithm algorithm);

/// All algorithms, paper's three first.
[[nodiscard]] const std::vector<Algorithm>& all_algorithms();

/// Instantiates an estimator. ACBM takes its parameters; others ignore
/// them. Routed through the spec path below, so it is exactly
/// make_estimator("ACBM:alpha=...,beta=...,gamma=...").
[[nodiscard]] std::unique_ptr<me::MotionEstimator> make_estimator(
    Algorithm algorithm,
    core::AcbmParams params = core::AcbmParams::paper_defaults());

/// Instantiates an estimator from a spec ("ACBM", "ACBM:alpha=500",
/// "FSBM:dec=quincunx", ...) via core::builtin_estimators() — the string
/// API benches and the CLI sweep configurations through without code
/// changes. @throws util::SpecError as EstimatorRegistry::create does.
[[nodiscard]] std::unique_ptr<me::MotionEstimator> make_estimator(
    std::string_view spec);

/// One Qp's aggregated results.
struct RdPoint {
  int qp = 0;
  double kbps = 0.0;           ///< total_bits · fps / frames / 1000
  double psnr_y = 0.0;         ///< mean luma PSNR over all frames
  double psnr_yuv = 0.0;
  double avg_positions = 0.0;  ///< SAD evaluations per P-frame macroblock
  double full_search_fraction = 0.0;  ///< P-frame blocks where FSBM ran
  double skip_fraction = 0.0;
  double mv_bits_share = 0.0;  ///< fraction of bits spent on vectors
  double field_smoothness = 0.0;  ///< mean ME-field smoothness (half-pel L1)
};

struct RdCurve {
  std::string sequence;
  std::string algorithm;
  int fps = 30;
  std::vector<RdPoint> points;
};

/// Sweep parameters.
struct SweepConfig {
  std::vector<int> qps = {16, 18, 20, 22, 24, 26, 28, 30};  ///< Table 1 set
  int search_range = 15;
  bool half_pel = true;
  double me_lambda = 0.0;  ///< paper: pure-SAD search
  core::AcbmParams acbm = core::AcbmParams::paper_defaults();
  codec::ModeDecision mode_decision = codec::ModeDecision::kHeuristic;
  bool deblock = false;    ///< in-loop Annex-J filter
  codec::ParallelConfig parallel;  ///< encoder threading (results identical)
  /// Entropy-coding slices per frame (1 = legacy single-slice ACV1 stream;
  /// N > 1 changes the bitstream — rates include the slice headers).
  int slices = 1;

  /// Builds a config from the key=value grammar over the sweep's keys —
  /// qps (colon-separated list, e.g. "qps=16:22:30"), range, halfpel,
  /// me_lambda, mode (heuristic|rd), deblock, slices, threads — applied on
  /// top of `base`. Estimator parameters are NOT sweep keys; they travel in
  /// the estimator spec ("ACBM:alpha=500"). @throws util::SpecError with
  /// the valid-key table on unknown keys.
  [[nodiscard]] static SweepConfig from_spec(std::string_view spec,
                                             const SweepConfig& base);
  [[nodiscard]] static SweepConfig from_spec(std::string_view spec);

  /// Canonical spec (every key, declaration order); round-trips through
  /// from_spec, so benches can stamp the exact sweep configuration.
  [[nodiscard]] std::string to_spec() const;
};

/// Encodes `frames` (already at the target fps) once per Qp.
RdCurve run_rd_sweep(const std::vector<video::Frame>& frames, int fps,
                     Algorithm algorithm, const SweepConfig& config,
                     const std::string& sequence_name);

/// Spec-keyed overload: the estimator comes from `estimator_spec`
/// ("ACBM:alpha=500", "FSBM", ...) and the curve is labelled with the
/// spec text, so swept variants stay distinguishable in tables and CSVs.
RdCurve run_rd_sweep(const std::vector<video::Frame>& frames, int fps,
                     std::string_view estimator_spec,
                     const SweepConfig& config,
                     const std::string& sequence_name);

/// Single-Qp convenience used by Table 1 and the ablation bench.
RdPoint run_rd_point(const std::vector<video::Frame>& frames, int fps,
                     me::MotionEstimator& estimator, int qp,
                     const SweepConfig& config);

}  // namespace acbm::analysis
