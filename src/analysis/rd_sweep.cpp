#include "analysis/rd_sweep.hpp"

#include <stdexcept>

#include "core/acbm.hpp"
#include "core/builtin_estimators.hpp"

namespace acbm::analysis {

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFsbm:
      return "FSBM";
    case Algorithm::kPbm:
      return "PBM";
    case Algorithm::kAcbm:
      return "ACBM";
    case Algorithm::kTss:
      return "TSS";
    case Algorithm::kNtss:
      return "NTSS";
    case Algorithm::kFss:
      return "4SS";
    case Algorithm::kDs:
      return "DS";
    case Algorithm::kHexbs:
      return "HEXBS";
    case Algorithm::kCds:
      return "CDS";
    case Algorithm::kFsbmAdaptiveDecimation:
      return "FSBM-adec";
    case Algorithm::kFsbmSubsampled:
      return "FSBM-sub";
  }
  return "?";
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kAcbm, Algorithm::kFsbm, Algorithm::kPbm,
      Algorithm::kTss,  Algorithm::kNtss, Algorithm::kFss,
      Algorithm::kDs,   Algorithm::kHexbs, Algorithm::kCds,
      Algorithm::kFsbmAdaptiveDecimation, Algorithm::kFsbmSubsampled};
  return algorithms;
}

std::unique_ptr<me::MotionEstimator> make_estimator(Algorithm algorithm,
                                                    core::AcbmParams params) {
  // Algorithm display names double as registry keys, so the enum-based API
  // is now a thin veneer over the string-keyed factory.
  auto estimator = core::builtin_estimators().create(algorithm_name(algorithm));
  if (auto* acbm = dynamic_cast<core::Acbm*>(estimator.get())) {
    acbm->set_params(params);
  }
  return estimator;
}

RdPoint run_rd_point(const std::vector<video::Frame>& frames, int fps,
                     me::MotionEstimator& estimator, int qp,
                     const SweepConfig& config) {
  if (frames.empty()) {
    throw std::invalid_argument("rd sweep: no frames");
  }
  estimator.reset();

  codec::EncoderConfig ec;
  ec.qp = qp;
  ec.search_range = config.search_range;
  ec.half_pel = config.half_pel;
  ec.me_lambda = config.me_lambda;
  ec.mode_decision = config.mode_decision;
  ec.deblock = config.deblock;
  ec.parallel = config.parallel;
  ec.slices = config.slices;
  ec.fps_num = fps;
  ec.fps_den = 1;

  const video::PictureSize size{frames[0].width(), frames[0].height()};
  codec::Encoder encoder(size, ec, estimator);

  double psnr_y_sum = 0.0;
  double psnr_yuv_sum = 0.0;
  std::uint64_t total_bits = 0;
  std::uint64_t mv_bits = 0;
  std::uint64_t me_positions = 0;
  std::uint64_t fs_blocks = 0;
  std::uint64_t p_mbs = 0;
  std::uint64_t skip_mbs = 0;
  double smoothness_sum = 0.0;
  int p_frames = 0;

  const int mbs_per_frame =
      (size.width / me::kBlockSize) * (size.height / me::kBlockSize);

  for (const video::Frame& frame : frames) {
    const codec::FrameReport r = encoder.encode_frame(frame);
    psnr_y_sum += r.psnr_y;
    psnr_yuv_sum += r.psnr_yuv;
    total_bits += r.bits;
    mv_bits += r.mv_bits;
    if (!r.intra) {
      me_positions += r.me_positions;
      fs_blocks += r.full_search_blocks;
      p_mbs += static_cast<std::uint64_t>(mbs_per_frame);
      skip_mbs += static_cast<std::uint64_t>(r.skip_mbs);
      smoothness_sum += r.me_field_smoothness;
      ++p_frames;
    }
  }

  const double n = static_cast<double>(frames.size());
  RdPoint point;
  point.qp = qp;
  point.psnr_y = psnr_y_sum / n;
  point.psnr_yuv = psnr_yuv_sum / n;
  point.kbps = static_cast<double>(total_bits) * fps / n / 1000.0;
  if (p_mbs > 0) {
    point.avg_positions =
        static_cast<double>(me_positions) / static_cast<double>(p_mbs);
    point.full_search_fraction =
        static_cast<double>(fs_blocks) / static_cast<double>(p_mbs);
    point.skip_fraction =
        static_cast<double>(skip_mbs) / static_cast<double>(p_mbs);
  }
  point.mv_bits_share =
      total_bits > 0
          ? static_cast<double>(mv_bits) / static_cast<double>(total_bits)
          : 0.0;
  point.field_smoothness = p_frames > 0 ? smoothness_sum / p_frames : 0.0;
  return point;
}

RdCurve run_rd_sweep(const std::vector<video::Frame>& frames, int fps,
                     Algorithm algorithm, const SweepConfig& config,
                     const std::string& sequence_name) {
  RdCurve curve;
  curve.sequence = sequence_name;
  curve.algorithm = algorithm_name(algorithm);
  curve.fps = fps;
  const auto estimator = make_estimator(algorithm, config.acbm);
  for (int qp : config.qps) {
    curve.points.push_back(
        run_rd_point(frames, fps, *estimator, qp, config));
  }
  return curve;
}

}  // namespace acbm::analysis
