#include "analysis/rd_sweep.hpp"

#include <stdexcept>

#include "codec/config_map.hpp"
#include "core/acbm.hpp"
#include "core/builtin_estimators.hpp"
#include "util/kv.hpp"

namespace acbm::analysis {

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFsbm:
      return "FSBM";
    case Algorithm::kPbm:
      return "PBM";
    case Algorithm::kAcbm:
      return "ACBM";
    case Algorithm::kTss:
      return "TSS";
    case Algorithm::kNtss:
      return "NTSS";
    case Algorithm::kFss:
      return "4SS";
    case Algorithm::kDs:
      return "DS";
    case Algorithm::kHexbs:
      return "HEXBS";
    case Algorithm::kCds:
      return "CDS";
    case Algorithm::kFsbmAdaptiveDecimation:
      return "FSBM-adec";
    case Algorithm::kFsbmSubsampled:
      return "FSBM-sub";
  }
  return "?";
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kAcbm, Algorithm::kFsbm, Algorithm::kPbm,
      Algorithm::kTss,  Algorithm::kNtss, Algorithm::kFss,
      Algorithm::kDs,   Algorithm::kHexbs, Algorithm::kCds,
      Algorithm::kFsbmAdaptiveDecimation, Algorithm::kFsbmSubsampled};
  return algorithms;
}

std::unique_ptr<me::MotionEstimator> make_estimator(Algorithm algorithm,
                                                    core::AcbmParams params) {
  // Algorithm display names double as registry keys, so the enum-based API
  // is a veneer over the parameterized spec path: the AcbmParams struct is
  // rendered into spec pairs (format_double round-trips exactly) and bound
  // by the registry like any CLI-authored spec.
  me::EstimatorSpec spec;
  spec.name = algorithm_name(algorithm);
  if (algorithm == Algorithm::kAcbm) {
    spec.params = {{"alpha", util::format_double(params.alpha)},
                   {"beta", util::format_double(params.beta)},
                   {"gamma", util::format_double(params.gamma)}};
  }
  return core::builtin_estimators().create(spec);
}

std::unique_ptr<me::MotionEstimator> make_estimator(std::string_view spec) {
  return core::builtin_estimators().create(spec);
}

RdPoint run_rd_point(const std::vector<video::Frame>& frames, int fps,
                     me::MotionEstimator& estimator, int qp,
                     const SweepConfig& config) {
  if (frames.empty()) {
    throw std::invalid_argument("rd sweep: no frames");
  }
  estimator.reset();

  codec::EncoderConfig ec;
  ec.qp = qp;
  ec.search_range = config.search_range;
  ec.half_pel = config.half_pel;
  ec.me_lambda = config.me_lambda;
  ec.mode_decision = config.mode_decision;
  ec.deblock = config.deblock;
  ec.parallel = config.parallel;
  ec.slices = config.slices;
  ec.fps_num = fps;
  ec.fps_den = 1;

  const video::PictureSize size{frames[0].width(), frames[0].height()};
  codec::Encoder encoder(size, ec, estimator);

  double psnr_y_sum = 0.0;
  double psnr_yuv_sum = 0.0;
  std::uint64_t total_bits = 0;
  std::uint64_t mv_bits = 0;
  std::uint64_t me_positions = 0;
  std::uint64_t fs_blocks = 0;
  std::uint64_t p_mbs = 0;
  std::uint64_t skip_mbs = 0;
  double smoothness_sum = 0.0;
  int p_frames = 0;

  const int mbs_per_frame =
      (size.width / me::kBlockSize) * (size.height / me::kBlockSize);

  for (const video::Frame& frame : frames) {
    const codec::FrameReport r = encoder.encode_frame(frame);
    psnr_y_sum += r.psnr_y;
    psnr_yuv_sum += r.psnr_yuv;
    total_bits += r.bits;
    mv_bits += r.mv_bits;
    if (!r.intra) {
      me_positions += r.me_positions;
      fs_blocks += r.full_search_blocks;
      p_mbs += static_cast<std::uint64_t>(mbs_per_frame);
      skip_mbs += static_cast<std::uint64_t>(r.skip_mbs);
      smoothness_sum += r.me_field_smoothness;
      ++p_frames;
    }
  }

  const double n = static_cast<double>(frames.size());
  RdPoint point;
  point.qp = qp;
  point.psnr_y = psnr_y_sum / n;
  point.psnr_yuv = psnr_yuv_sum / n;
  point.kbps = static_cast<double>(total_bits) * fps / n / 1000.0;
  if (p_mbs > 0) {
    point.avg_positions =
        static_cast<double>(me_positions) / static_cast<double>(p_mbs);
    point.full_search_fraction =
        static_cast<double>(fs_blocks) / static_cast<double>(p_mbs);
    point.skip_fraction =
        static_cast<double>(skip_mbs) / static_cast<double>(p_mbs);
  }
  point.mv_bits_share =
      total_bits > 0
          ? static_cast<double>(mv_bits) / static_cast<double>(total_bits)
          : 0.0;
  point.field_smoothness = p_frames > 0 ? smoothness_sum / p_frames : 0.0;
  return point;
}

RdCurve run_rd_sweep(const std::vector<video::Frame>& frames, int fps,
                     Algorithm algorithm, const SweepConfig& config,
                     const std::string& sequence_name) {
  RdCurve curve;
  curve.sequence = sequence_name;
  curve.algorithm = algorithm_name(algorithm);
  curve.fps = fps;
  const auto estimator = make_estimator(algorithm, config.acbm);
  for (int qp : config.qps) {
    curve.points.push_back(
        run_rd_point(frames, fps, *estimator, qp, config));
  }
  return curve;
}

RdCurve run_rd_sweep(const std::vector<video::Frame>& frames, int fps,
                     std::string_view estimator_spec,
                     const SweepConfig& config,
                     const std::string& sequence_name) {
  RdCurve curve;
  curve.sequence = sequence_name;
  curve.algorithm = std::string(estimator_spec);
  curve.fps = fps;
  const auto estimator = make_estimator(estimator_spec);
  for (int qp : config.qps) {
    curve.points.push_back(
        run_rd_point(frames, fps, *estimator, qp, config));
  }
  return curve;
}

// ------------------------------------------------------- SweepConfig specs

namespace {

/// The sweep keys that map 1:1 onto EncoderConfig fields (run_rd_point
/// copies them straight across). Their parsing, types and ranges live in
/// codec/config_map.cpp's single key table; from_spec delegates so the two
/// grammars cannot drift.
constexpr const char* kSharedKeys[] = {"range",   "halfpel", "me_lambda",
                                       "mode",    "deblock", "slices",
                                       "threads"};

std::string sweep_spec_usage() {
  std::string out =
      "sweep config grammar: key=val[,key=val...] over\n"
      "  qps=16:18:20:22:24:26:28:30 (colon-separated quantisers; empty "
      "list allowed)\n";
  out += "plus these keys, with the same types/ranges as the encoder "
         "config grammar:\n ";
  for (const char* key : kSharedKeys) {
    out += ' ';
    out += key;
  }
  out += "\n(estimator parameters like alpha/beta/gamma belong in the "
         "estimator spec, e.g. \"ACBM:alpha=500\")\n";
  return out;
}

}  // namespace

SweepConfig SweepConfig::from_spec(std::string_view spec) {
  return from_spec(spec, SweepConfig{});
}

SweepConfig SweepConfig::from_spec(std::string_view spec,
                                   const SweepConfig& base) {
  SweepConfig config = base;
  std::vector<util::KeyValue> shared;
  for (const util::KeyValue& pair : util::parse_kv_list(spec)) {
    if (pair.first == "qps") {
      // Colon-separated so the list nests inside the comma-separated pair
      // grammar; an empty value is the empty list (to_spec round-trip).
      std::vector<int> qps;
      const std::string& list = pair.second;
      std::size_t begin = 0;
      while (begin <= list.size() && !list.empty()) {
        std::size_t end = list.find(':', begin);
        if (end == std::string_view::npos) {
          end = list.size();
        }
        // An empty entry (leading/trailing/double colon) throws here.
        const std::int64_t qp = util::parse_int_strict(
            list.substr(begin, end - begin), "qps entry");
        if (qp < 1 || qp > 31) {
          throw util::SpecError("sweep config: qp " + std::to_string(qp) +
                                " out of range [1, 31]");
        }
        qps.push_back(static_cast<int>(qp));
        if (end == list.size()) {
          break;
        }
        begin = end + 1;
      }
      config.qps = std::move(qps);
      continue;
    }
    bool is_shared = false;
    for (const char* key : kSharedKeys) {
      if (pair.first == key) {
        is_shared = true;
        break;
      }
    }
    if (!is_shared) {
      throw util::SpecError("sweep config: unknown key \"" + pair.first +
                            "\"; valid keys:\n" + sweep_spec_usage());
    }
    shared.push_back(pair);
  }

  // Round-trip the shared keys through the codec key table: sweep fields →
  // EncoderConfig, apply the pairs (validated there), copy back.
  codec::EncoderConfig ec;
  ec.search_range = config.search_range;
  ec.half_pel = config.half_pel;
  ec.me_lambda = config.me_lambda;
  ec.mode_decision = config.mode_decision;
  ec.deblock = config.deblock;
  ec.slices = config.slices;
  ec.parallel.threads = config.parallel.threads;
  ec = codec::encoder_config_from_spec(util::format_kv_list(shared), ec);
  config.search_range = ec.search_range;
  config.half_pel = ec.half_pel;
  config.me_lambda = ec.me_lambda;
  config.mode_decision = ec.mode_decision;
  config.deblock = ec.deblock;
  config.slices = ec.slices;
  config.parallel.threads = ec.parallel.threads;
  return config;
}

std::string SweepConfig::to_spec() const {
  std::string out = "qps=";
  for (std::size_t i = 0; i < qps.size(); ++i) {
    if (i > 0) {
      out += ':';
    }
    out += std::to_string(qps[i]);
  }
  out += ",range=" + std::to_string(search_range);
  out += std::string(",halfpel=") + (half_pel ? "1" : "0");
  out += ",me_lambda=" + util::format_double(me_lambda);
  out += std::string(",mode=") +
         (mode_decision == codec::ModeDecision::kRateDistortion
              ? "rd"
              : "heuristic");
  out += std::string(",deblock=") + (deblock ? "1" : "0");
  out += ",slices=" + std::to_string(slices);
  out += ",threads=" + std::to_string(parallel.threads);
  return out;
}

}  // namespace acbm::analysis
