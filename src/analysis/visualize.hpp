#pragma once
// Visualisation dumps: portable graymap/pixmap (PGM/PPM) writers plus
// renderers for the structures this library computes — luma planes, motion
// fields and ACBM decision maps. PGM/PPM are header-plus-raster formats any
// image viewer opens, so the tools stay dependency-free.

#include <string>
#include <vector>

#include "core/decision.hpp"
#include "me/mv_field.hpp"
#include "video/plane.hpp"

namespace acbm::analysis {

/// An 8-bit RGB raster.
struct RgbImage {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> rgb;  ///< 3 bytes per pixel, row-major

  [[nodiscard]] static RgbImage solid(int w, int h, std::uint8_t r,
                                      std::uint8_t g, std::uint8_t b);
  void set(int x, int y, std::uint8_t r, std::uint8_t g, std::uint8_t b);
};

/// Writes the visible area of a plane as binary PGM (P5).
void write_pgm(const std::string& path, const video::Plane& plane);

/// Writes an RGB image as binary PPM (P6).
void write_ppm(const std::string& path, const RgbImage& image);

/// Renders a motion field as an RGB image at `scale` pixels per macroblock:
/// hue from direction, saturation from magnitude (zero vectors render gray).
/// Useful for eyeballing the paper's "coherent vs incoherent field" claim.
[[nodiscard]] RgbImage render_mv_field(const me::MvField& field,
                                       int scale = 16,
                                       int max_halfpel = 30);

/// Renders ACBM's per-block outcomes over a field-sized grid:
/// green = accepted by T1 (low activity), blue = accepted by T2 (good
/// match), red = critical (FSBM ran). Blocks absent from the log render
/// black.
[[nodiscard]] RgbImage render_decision_map(
    const std::vector<core::BlockDecision>& decisions, int mbs_x, int mbs_y,
    int scale = 16);

}  // namespace acbm::analysis
