#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace acbm::obs {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Thread-local (tracer, log) cache: one pointer compare on the hot path,
// re-registration under the tracer mutex only when a new tracer appears.
struct ThreadCache {
  const void* owner = nullptr;
  void* log = nullptr;
};
thread_local ThreadCache tls_cache;

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

struct ExportEvent {
  Event ev;
  int tid = 0;
  std::uint64_t seq = 0;  // per-thread record index; preserves log order
  bool emit = true;
};

void append_args(std::string& out, const Event& ev) {
  out += "\"args\":{";
  bool first = true;
  auto field = [&](const char* key, std::int64_t value) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  if (ev.session >= 0) field("session", ev.session);
  if (ev.frame >= 0) field("frame", ev.frame);
  if (ev.row >= 0) field("row", ev.row);
  out += '}';
}

}  // namespace

Tracer::Tracer(std::size_t events_per_thread)
    : capacity_(round_up_pow2(std::max<std::size_t>(events_per_thread, 8))) {}

Tracer::~Tracer() {
  if (current() == this) uninstall();
}

void Tracer::install() { g_current.store(this, std::memory_order_release); }

void Tracer::uninstall() { g_current.store(nullptr, std::memory_order_release); }

std::int64_t Tracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::ThreadLog& Tracer::log_for_current_thread() {
  if (tls_cache.owner != this) {
    std::lock_guard<std::mutex> lock(mutex_);
    logs_.push_back(std::make_unique<ThreadLog>(capacity_));
    logs_.back()->tid = static_cast<int>(logs_.size());
    tls_cache.owner = this;
    tls_cache.log = logs_.back().get();
  }
  return *static_cast<ThreadLog*>(tls_cache.log);
}

void Tracer::record(Phase phase, const char* category, const char* name,
                    std::int32_t session, std::int32_t frame, std::int32_t row,
                    std::uint64_t id) {
  ThreadLog& log = log_for_current_thread();
  const std::uint64_t n = log.count.load(std::memory_order_relaxed);
  Event& slot = log.events[n & (capacity_ - 1)];
  slot.ts_ns = now_ns();
  slot.category = category;
  slot.name = name;
  slot.session = session;
  slot.frame = frame;
  slot.row = row;
  slot.phase = phase;
  slot.id = id;
  log.count.store(n + 1, std::memory_order_release);
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& log : logs_) {
    const std::uint64_t n = log->count.load(std::memory_order_acquire);
    if (n > capacity_) total += n - capacity_;
  }
  return total;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return logs_.size();
}

void Tracer::write_chrome_json(std::ostream& os) const {
  std::vector<ExportEvent> events;
  std::vector<int> tids;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& log : logs_) {
      tids.push_back(log->tid);
      const std::uint64_t count = log->count.load(std::memory_order_acquire);
      const std::uint64_t first = count > capacity_ ? count - capacity_ : 0;
      for (std::uint64_t k = first; k < count; ++k) {
        ExportEvent ee;
        ee.ev = log->events[k & (capacity_ - 1)];
        ee.tid = log->tid;
        ee.seq = k;
        events.push_back(ee);
      }
    }
  }

  // Drop orphans so every emitted B has its E and every b its e.
  // Thread spans pair in per-thread log order (a stack per tid) …
  {
    std::map<int, std::vector<ExportEvent*>> open;
    std::stable_sort(events.begin(), events.end(),
                     [](const ExportEvent& a, const ExportEvent& b) {
                       return a.tid != b.tid ? a.tid < b.tid : a.seq < b.seq;
                     });
    for (ExportEvent& ee : events) {
      if (ee.ev.phase == Phase::kBegin) {
        open[ee.tid].push_back(&ee);
      } else if (ee.ev.phase == Phase::kEnd) {
        auto& stack = open[ee.tid];
        if (stack.empty()) {
          ee.emit = false;  // begin lost to ring wrap
        } else {
          stack.pop_back();
        }
      }
    }
    for (auto& [tid, stack] : open) {
      for (ExportEvent* ee : stack) ee->emit = false;  // still open at export
    }
  }
  // … async spans pair chronologically by (category, id) across threads.
  {
    std::stable_sort(events.begin(), events.end(),
                     [](const ExportEvent& a, const ExportEvent& b) {
                       if (a.ev.ts_ns != b.ev.ts_ns) return a.ev.ts_ns < b.ev.ts_ns;
                       if (a.tid != b.tid) return a.tid < b.tid;
                       return a.seq < b.seq;
                     });
    std::map<std::pair<const char*, std::uint64_t>, std::deque<ExportEvent*>>
        open;
    for (ExportEvent& ee : events) {
      if (ee.ev.phase == Phase::kAsyncBegin) {
        open[{ee.ev.category, ee.ev.id}].push_back(&ee);
      } else if (ee.ev.phase == Phase::kAsyncEnd) {
        auto& queue = open[{ee.ev.category, ee.ev.id}];
        if (queue.empty()) {
          ee.emit = false;
        } else {
          queue.pop_front();
        }
      }
    }
    for (auto& [key, queue] : open) {
      for (ExportEvent* ee : queue) ee->emit = false;
    }
  }

  std::int64_t base_ts = 0;
  for (const ExportEvent& ee : events) {
    if (ee.emit && (base_ts == 0 || ee.ev.ts_ns < base_ts)) base_ts = ee.ev.ts_ns;
  }

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto emit_line = [&](const std::string& line) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += line;
  };

  std::sort(tids.begin(), tids.end());
  for (int tid : tids) {
    std::string line = "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
                       ",\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":"
                       "\"thread-" +
                       std::to_string(tid) + "\"}}";
    emit_line(line);
  }

  char ts_buf[32];
  for (const ExportEvent& ee : events) {
    if (!ee.emit) continue;
    const Event& ev = ee.ev;
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f",
                  static_cast<double>(ev.ts_ns - base_ts) / 1000.0);
    std::string line = "{\"pid\":1,\"tid\":" + std::to_string(ee.tid) +
                       ",\"ts\":" + ts_buf;
    auto add_names = [&]() {
      line += ",\"cat\":\"";
      append_escaped(line, ev.category != nullptr ? ev.category : "");
      line += "\",\"name\":\"";
      append_escaped(line, ev.name != nullptr ? ev.name : "");
      line += '"';
    };
    switch (ev.phase) {
      case Phase::kBegin:
        line += ",\"ph\":\"B\"";
        add_names();
        line += ',';
        append_args(line, ev);
        break;
      case Phase::kEnd:
        line += ",\"ph\":\"E\"";
        break;
      case Phase::kAsyncBegin:
      case Phase::kAsyncEnd: {
        line += ev.phase == Phase::kAsyncBegin ? ",\"ph\":\"b\"" : ",\"ph\":\"e\"";
        add_names();
        char id_buf[32];
        std::snprintf(id_buf, sizeof(id_buf), "0x%" PRIx64, ev.id);
        line += ",\"id\":\"";
        line += id_buf;
        line += "\",";
        append_args(line, ev);
        break;
      }
      case Phase::kInstant:
        line += ",\"ph\":\"i\",\"s\":\"t\"";
        add_names();
        line += ',';
        append_args(line, ev);
        break;
      case Phase::kCounter: {
        line += ",\"ph\":\"C\",\"name\":\"";
        append_escaped(line, ev.name != nullptr ? ev.name : "");
        if (ev.row >= 0) {
          line += '.';
          line += std::to_string(ev.row);
        }
        line += "\",\"args\":{\"value\":" + std::to_string(ev.id) + '}';
        break;
      }
    }
    line += '}';
    emit_line(line);
  }
  out += "\n]}\n";
  os << out;
}

void Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("obs: cannot open trace output: " + path);
  }
  write_chrome_json(os);
  os.flush();
  if (!os) {
    throw std::runtime_error("obs: failed writing trace output: " + path);
  }
}

}  // namespace acbm::obs
