#pragma once
// Metrics registry: named counters, max-gauges, and fixed-bucket latency
// histograms with p50/p95/p99 extraction.
//
// Hot-path contract: registration (Registry::counter/gauge/histogram) takes
// a mutex and may allocate; callers cache the returned reference once, after
// which every update is a relaxed atomic op with zero allocation. Returned
// references stay valid for the registry's lifetime (deque-backed storage —
// atomics never move).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace acbm::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Running-maximum gauge (e.g. peak queue depth).
class Gauge {
 public:
  void note_max(std::uint64_t v) {
    std::uint64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Log-spaced latency histogram over nanosecond values (HDR-style): each
// power-of-two octave splits into 2^kSubBits sub-buckets, so any recorded
// value lands in a bucket whose lower edge is within ~12.5% of it. Values
// 0..15 are exact. Recording is a single relaxed fetch_add; percentiles are
// nearest-rank over the bucket counts and return the bucket's lower edge,
// which makes them exactly reproducible from a sorted list of quantized
// samples (tests/obs_test.cpp holds this property).
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr std::size_t kBuckets = 496;  // covers the full u64 range

  void record(std::uint64_t value_ns) {
    buckets_[bucket_index(value_ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value_ns, std::memory_order_relaxed);
    max_.note_max(value_ns);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_value() const { return max_.value(); }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  // Nearest-rank percentile (p in [0,100]), reported as the lower edge of
  // the bucket holding the rank'th smallest sample. 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v);
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index);
  // The value a recorded sample is reported as — reference for exactness
  // tests.
  [[nodiscard]] static std::uint64_t quantize(std::uint64_t v) {
    return bucket_lower(bucket_index(v));
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  Gauge max_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p95_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t max_ns = 0;
    double mean_ns = 0.0;
  };

  // Snapshots sorted by name; values are relaxed reads, coherent enough for
  // reporting (exact once writers have quiesced).
  [[nodiscard]] std::vector<CounterRow> counter_rows() const;
  [[nodiscard]] std::vector<GaugeRow> gauge_rows() const;
  [[nodiscard]] std::vector<HistogramRow> histogram_rows() const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
  std::map<std::string, Counter*> counter_index_;
  std::map<std::string, Gauge*> gauge_index_;
  std::map<std::string, Histogram*> histogram_index_;
};

}  // namespace acbm::obs
