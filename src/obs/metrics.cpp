#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <tuple>
#include <utility>

namespace acbm::obs {

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v < (std::uint64_t{1} << kSubBits)) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBits;
  const std::uint64_t sub = (v >> shift) & ((std::uint64_t{1} << kSubBits) - 1);
  return static_cast<std::size_t>(
      ((static_cast<std::size_t>(msb - kSubBits) + 1) << kSubBits) + sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  const std::size_t octave = index >> kSubBits;
  const std::size_t sub = index & ((std::size_t{1} << kSubBits) - 1);
  if (octave <= 1) return static_cast<std::uint64_t>(index);
  const int msb = static_cast<int>(octave) + kSubBits - 1;
  return (std::uint64_t{1} << msb) +
         (static_cast<std::uint64_t>(sub) << (msb - kSubBits));
}

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(n)));
  rank = std::min(std::max<std::uint64_t>(rank, 1), n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return bucket_lower(i);
  }
  return max_value();
}

namespace {

template <typename T, typename Storage, typename Index>
T& lookup_or_create(std::mutex& mutex, Storage& storage, Index& index,
                    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = index.find(name);
  if (it != index.end()) return *it->second;
  storage.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  T* created = &storage.back().second;
  index.emplace(name, created);
  return *created;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  return lookup_or_create<Counter>(mutex_, counters_, counter_index_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  return lookup_or_create<Gauge>(mutex_, gauges_, gauge_index_, name);
}

Histogram& Registry::histogram(const std::string& name) {
  return lookup_or_create<Histogram>(mutex_, histograms_, histogram_index_,
                                     name);
}

std::vector<Registry::CounterRow> Registry::counter_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterRow> rows;
  rows.reserve(counter_index_.size());
  for (const auto& [name, counter] : counter_index_) {
    rows.push_back({name, counter->value()});
  }
  return rows;
}

std::vector<Registry::GaugeRow> Registry::gauge_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeRow> rows;
  rows.reserve(gauge_index_.size());
  for (const auto& [name, gauge] : gauge_index_) {
    rows.push_back({name, gauge->value()});
  }
  return rows;
}

std::vector<Registry::HistogramRow> Registry::histogram_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramRow> rows;
  rows.reserve(histogram_index_.size());
  for (const auto& [name, hist] : histogram_index_) {
    HistogramRow row;
    row.name = name;
    row.count = hist->count();
    row.p50_ns = hist->percentile(50.0);
    row.p95_ns = hist->percentile(95.0);
    row.p99_ns = hist->percentile(99.0);
    row.max_ns = hist->max_value();
    row.mean_ns = hist->mean();
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace acbm::obs
