#pragma once
// Span tracer: per-thread lock-free ring buffers of begin/end events,
// exported as Chrome trace-event JSON (loads in Perfetto / chrome://tracing).
//
// Design contract (docs/OBSERVABILITY.md):
//  - Disarmed (no tracer installed) every probe is one relaxed atomic load
//    and a branch on nullptr — cheap enough to leave compiled into release
//    hot paths, and incapable of changing encoded bytes.
//  - Armed, each thread appends to its own fixed-capacity ring buffer with
//    a single-writer monotonic index; no locks, no allocation after the
//    thread's first event. When a ring wraps, the oldest events are
//    overwritten and counted in dropped().
//  - Export is quiescent-reader: call write_chrome_json() only after the
//    recording threads have drained (pools parked or destroyed). Category
//    and name must be string literals (or otherwise outlive the tracer) —
//    the ring stores the pointers, not copies.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace acbm::obs {

enum class Phase : std::uint8_t {
  kBegin,       // span open ("B")
  kEnd,         // span close ("E")
  kAsyncBegin,  // async span open ("b"), paired across threads by id
  kAsyncEnd,    // async span close ("e")
  kInstant,     // point event ("i")
  kCounter,     // sampled value ("C"); row = lane, id = value
};

struct Event {
  std::int64_t ts_ns = 0;
  const char* category = nullptr;
  const char* name = nullptr;
  std::int32_t session = -1;  // -1 = absent
  std::int32_t frame = -1;
  std::int32_t row = -1;
  Phase phase = Phase::kInstant;
  std::uint64_t id = 0;  // async pair id, or counter value
};

class Tracer {
 public:
  // events_per_thread is rounded up to a power of two; each slot is
  // sizeof(Event) bytes, so the default keeps a thread's ring ~1.5 MiB.
  explicit Tracer(std::size_t events_per_thread = std::size_t{1} << 15);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Makes this tracer the process-wide recording target. Only one tracer
  // is armed at a time; installing replaces the previous one.
  void install();
  static void uninstall();

  [[nodiscard]] static Tracer* current() {
    return g_current.load(std::memory_order_relaxed);
  }

  void record(Phase phase, const char* category, const char* name,
              std::int32_t session = -1, std::int32_t frame = -1,
              std::int32_t row = -1, std::uint64_t id = 0);

  [[nodiscard]] static std::int64_t now_ns();

  // Chrome trace-event JSON ({"traceEvents":[...]}). Orphaned events —
  // an E whose B was overwritten by ring wrap, a span still open at
  // export, an async b/e without its partner — are dropped so the output
  // always satisfies scripts/validate_trace.py's matched-pairs contract.
  void write_chrome_json(std::ostream& os) const;
  void write_chrome_json_file(const std::string& path) const;

  // Events lost to ring wrap, summed over threads.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t thread_count() const;

 private:
  struct ThreadLog {
    explicit ThreadLog(std::size_t capacity) : events(capacity) {}
    std::vector<Event> events;
    std::atomic<std::uint64_t> count{0};  // writer releases, exporter acquires
    int tid = 0;
  };

  ThreadLog& log_for_current_thread();

  static inline std::atomic<Tracer*> g_current{nullptr};

  const std::size_t capacity_;  // power of two
  mutable std::mutex mutex_;    // guards logs_ (registration + export walk)
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

// RAII thread span. Caches the tracer observed at construction so the end
// event always pairs with its begin on the same tracer, even if another
// tracer is installed mid-span.
class Span {
 public:
  explicit Span(const char* category, const char* name,
                std::int32_t session = -1, std::int32_t frame = -1,
                std::int32_t row = -1)
      : tracer_(Tracer::current()) {
    if (tracer_ != nullptr) {
      category_ = category;
      name_ = name;
      tracer_->record(Phase::kBegin, category, name, session, frame, row);
    }
  }
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->record(Phase::kEnd, category_, name_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
};

inline void instant(const char* category, const char* name,
                    std::int32_t session = -1, std::int32_t frame = -1,
                    std::int32_t row = -1) {
  if (Tracer* t = Tracer::current()) {
    t->record(Phase::kInstant, category, name, session, frame, row);
  }
}

// Async spans pair begin/end across threads by (category, id) — used for
// submit→resolve frame lifetimes that start on the caller thread and end
// on a worker.
inline void async_begin(const char* category, const char* name,
                        std::uint64_t id, std::int32_t session = -1,
                        std::int32_t frame = -1) {
  if (Tracer* t = Tracer::current()) {
    t->record(Phase::kAsyncBegin, category, name, session, frame, -1, id);
  }
}

inline void async_end(const char* category, const char* name,
                      std::uint64_t id, std::int32_t session = -1,
                      std::int32_t frame = -1) {
  if (Tracer* t = Tracer::current()) {
    t->record(Phase::kAsyncEnd, category, name, session, frame, -1, id);
  }
}

// Sampled counter series; rendered as "<name>.<lane>" counter tracks.
inline void counter(const char* category, const char* name, std::int32_t lane,
                    std::uint64_t value) {
  if (Tracer* t = Tracer::current()) {
    t->record(Phase::kCounter, category, name, -1, -1, lane, value);
  }
}

}  // namespace acbm::obs
